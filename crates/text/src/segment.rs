//! Segmented index: a catalog sharded into contiguous slices, each with its
//! own self-contained [`LemmaIndex`] and snapshot file, probed per segment
//! and merged into one bounded top-k — bit-identical to a monolithic build.
//!
//! ## Why segments
//!
//! A monolithic index must be rebuilt (or [`LemmaIndex::extend`]ed and then
//! re-persisted whole) every time the catalog grows. Segments make the delta
//! cheap: a catalog append *is* a new segment — built in the background over
//! just the appended slice, written to its own snapshot file, and published
//! by adding one line to the manifest. Old segment files are never rewritten.
//!
//! ## Exact equivalence to the monolithic build
//!
//! Each segment is a plain [`LemmaIndex`] over a contiguous sub-catalog
//! slice with **local** ids (entities `[base_i, base_{i+1})` renumbered from
//! 0, likewise types), so the existing snapshot codec persists it verbatim.
//! Query-time scoring, however, must see *collection-wide* statistics, or
//! segment boundaries would leak into IDF weights and scores would drift
//! from the monolithic build. So at construction time (count > 1) the
//! segmented index derives:
//!
//! - a **global engine**: the union vocabulary interned by replaying every
//!   segment's stored token sequences in monolithic build order (all entity
//!   lemmas in segment order, then all type lemmas — exactly the order
//!   `LemmaIndex::build` walks the union catalog, so first-occurrence token
//!   ids match bit for bit), plus an IDF recount over the same stream;
//! - per segment, **refreshed documents** (TFIDF vectors recomputed from
//!   the remapped token ids against the global IDF — bitwise equal to the
//!   monolithic build's documents) and a dense global→local token map.
//!
//! This is [`LemmaIndex::extend`]'s replay machinery generalized to many
//! bases: pure integer/float work over stored sequences, no string
//! re-tokenization, and no segment file is ever touched.
//!
//! A probe then fans out over segments: per segment the query terms are
//! gathered in ascending **global** token order (upper bound = global IDF,
//! postings row = local), the shared overlap pass
//! ([`run_overlap`]) keeps that segment's top-`shortlist`
//! lemmas, and the per-segment shortlists merge under (overlap desc, global
//! lemma rank asc) — the exact order the monolithic pass uses, since a
//! lemma's monolithic id restricted to one [`RefKind`] is its per-kind rank.
//! Any lemma in the merged top-`shortlist` is necessarily in its own
//! segment's top-`shortlist`, so the merged set equals the monolithic
//! shortlist; cosine rescoring against the refreshed documents and the
//! owner dedup then reproduce the monolithic candidate list bit for bit
//! (asserted by `tests/segment_equivalence.rs` at 2/4/8 segments, and for
//! the whole annotation pipeline by `webtable-core`'s equivalence tests).
//!
//! ## Cross-segment pruning and parallel fan-out
//!
//! Sequential fan-out visits segments in order and skips a whole segment
//! when the sum of its query-term upper bounds (the best overlap any of its
//! lemmas could reach) cannot beat the current merged shortlist threshold —
//! the same admissible bound WAND uses inside a segment, with the same
//! [`WAND_SAFETY`] float margin, so pruning never changes results (later
//! segments hold larger ranks and lose ties anyway). With
//! [`set_parallel_probe`](SegmentedIndex::set_parallel_probe) segments are
//! probed by scoped threads instead (no shared threshold, so no pruning);
//! the merge order is total, so both modes return identical results.
//!
//! At segment count 1 every call delegates straight to the inner
//! [`LemmaIndex`] — no derived state, no overhead, trivially bit-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use webtable_catalog::{Catalog, EntityId, TypeId};

use crate::engine::{SimEngine, StringSim, TextDoc};
use crate::index::{
    run_overlap, ExtendError, LemmaIndex, Match, ProbeMode, ProbeScratch, RefKind, WandTerm,
    WAND_SAFETY,
};
use crate::tfidf::{cosine, IdfTable};
use crate::tokenize::{normalize, to_sorted_set, Vocab};

/// Sentinel for "token absent" in local↔global token maps.
const UNSET: u32 = u32::MAX;

/// Probe surface shared by [`LemmaIndex`] and [`SegmentedIndex`], so
/// candidate generation upstream is generic over whether the catalog is
/// monolithic or sharded. All methods match the [`LemmaIndex`] inherent
/// methods of the same name.
pub trait CandidateIndex: Send + Sync {
    /// Prepares a query document against the (collection-wide) engine.
    fn doc(&self, text: &str) -> TextDoc;
    /// Top-`k` candidate entities with an explicit [`ProbeMode`].
    fn entity_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>>;
    /// Top-`k` candidate types with an explicit [`ProbeMode`].
    fn type_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>>;
    /// Top-`k` candidate entities under [`ProbeMode::Auto`].
    fn entity_candidates_with(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>> {
        self.entity_candidates_mode(query, k, rescoring_factor, ProbeMode::Auto, scratch)
    }
    /// Top-`k` candidate types under [`ProbeMode::Auto`].
    fn type_candidates_with(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>> {
        self.type_candidates_mode(query, k, rescoring_factor, ProbeMode::Auto, scratch)
    }
    /// Full similarity profile between a query and an entity.
    fn entity_profile(&self, query: &TextDoc, e: EntityId) -> StringSim;
    /// Full similarity profile between a query and a type.
    fn type_profile(&self, query: &TextDoc, t: TypeId) -> StringSim;
    /// Content digest (cache-compatibility fingerprint).
    fn content_digest(&self) -> u64;
}

/// Smart pointers probe through to their pointee, so generic callers can
/// pass `&Arc<SegmentedIndex>` (the shape annotators store) directly.
impl<T: CandidateIndex + ?Sized> CandidateIndex for std::sync::Arc<T> {
    fn doc(&self, text: &str) -> TextDoc {
        (**self).doc(text)
    }
    fn entity_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>> {
        (**self).entity_candidates_mode(query, k, rescoring_factor, mode, scratch)
    }
    fn type_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>> {
        (**self).type_candidates_mode(query, k, rescoring_factor, mode, scratch)
    }
    fn entity_profile(&self, query: &TextDoc, e: EntityId) -> StringSim {
        (**self).entity_profile(query, e)
    }
    fn type_profile(&self, query: &TextDoc, t: TypeId) -> StringSim {
        (**self).type_profile(query, t)
    }
    fn content_digest(&self) -> u64 {
        (**self).content_digest()
    }
}

impl CandidateIndex for LemmaIndex {
    fn doc(&self, text: &str) -> TextDoc {
        LemmaIndex::doc(self, text)
    }
    fn entity_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>> {
        LemmaIndex::entity_candidates_mode(self, query, k, rescoring_factor, mode, scratch)
    }
    fn type_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>> {
        LemmaIndex::type_candidates_mode(self, query, k, rescoring_factor, mode, scratch)
    }
    fn entity_profile(&self, query: &TextDoc, e: EntityId) -> StringSim {
        LemmaIndex::entity_profile(self, query, e)
    }
    fn type_profile(&self, query: &TextDoc, t: TypeId) -> StringSim {
        LemmaIndex::type_profile(self, query, t)
    }
    fn content_digest(&self) -> u64 {
        LemmaIndex::content_digest(self)
    }
}

/// Per-segment state derived against the global engine (multi-segment only).
#[derive(Debug)]
struct SegDerived {
    /// Refreshed documents (global token ids, global IDF weights), indexed
    /// by local lemma index. Bitwise equal to the monolithic build's docs.
    docs: Vec<TextDoc>,
    /// Dense global token id → local token id ([`UNSET`] when the segment
    /// never saw the token).
    g2l: Vec<u32>,
    /// Number of entity lemmas (local lemma indices `0..entity_lemma_count`
    /// are entities — `LemmaIndex::build` pushes entities first).
    entity_lemma_count: u32,
}

/// Collection-wide query state (multi-segment only).
#[derive(Debug)]
struct GlobalState {
    /// Union vocabulary + IDF, identical to a monolithic build's engine.
    engine: SimEngine,
    per_seg: Vec<SegDerived>,
    /// Prefix sums of per-segment entity-lemma counts: segment `i`'s local
    /// entity lemma `li` has global per-kind rank `entity_rank_bases[i]+li`,
    /// which equals its monolithic lemma id.
    entity_rank_bases: Vec<u32>,
    /// Likewise for type lemmas (monolithic type-lemma *rank*; comparisons
    /// are always within one kind, where rank order = lemma-id order).
    type_rank_bases: Vec<u32>,
}

/// A catalog index sharded into contiguous segments. See the module docs.
#[derive(Debug)]
pub struct SegmentedIndex {
    segments: Vec<Arc<LemmaIndex>>,
    /// Prefix sums of per-segment entity counts (`len = segments + 1`):
    /// segment `i` owns global entities `[entity_bases[i], entity_bases[i+1])`.
    entity_bases: Vec<u32>,
    /// Prefix sums of per-segment type counts.
    type_bases: Vec<u32>,
    /// `None` iff there is exactly one segment (pure delegation).
    global: Option<GlobalState>,
    parallel_probe: bool,
    /// Segments actually probed by multi-segment fan-outs.
    segments_probed: AtomicU64,
    /// Segments skipped by the cross-segment upper-bound test.
    segments_skipped: AtomicU64,
    content_digest: u64,
}

impl SegmentedIndex {
    /// Wraps one monolithic index as a single-segment catalog. Every probe
    /// delegates to it directly; the content digest is the segment's own, so
    /// cache fingerprints (and warm caches restored from snapshots) carry
    /// over unchanged from the monolithic path.
    pub fn from_single(index: Arc<LemmaIndex>) -> SegmentedIndex {
        SegmentedIndex::from_segments(vec![index])
    }

    /// Assembles a segmented index from per-slice [`LemmaIndex`]es, in
    /// catalog order (segment `i`'s local entity 0 is global entity
    /// `Σ_{j<i} num_entities_j`, likewise types). With more than one segment
    /// this derives the global engine and refreshed per-segment state — see
    /// the module docs.
    pub fn from_segments(segments: Vec<Arc<LemmaIndex>>) -> SegmentedIndex {
        assert!(!segments.is_empty(), "a segmented index needs at least one segment");
        let mut entity_bases = Vec::with_capacity(segments.len() + 1);
        let mut type_bases = Vec::with_capacity(segments.len() + 1);
        entity_bases.push(0u32);
        type_bases.push(0u32);
        for seg in &segments {
            entity_bases.push(entity_bases.last().unwrap() + seg.num_indexed_entities() as u32);
            type_bases.push(type_bases.last().unwrap() + seg.num_indexed_types() as u32);
        }
        let global = if segments.len() > 1 { Some(derive_global(&segments)) } else { None };
        let content_digest = combined_digest(&segments);
        SegmentedIndex {
            segments,
            entity_bases,
            type_bases,
            global,
            parallel_probe: false,
            segments_probed: AtomicU64::new(0),
            segments_skipped: AtomicU64::new(0),
            content_digest,
        }
    }

    /// Builds a catalog's index pre-split into `num_segments` contiguous
    /// slices (entities and types each split as evenly as possible).
    /// `num_segments = 1` is byte-identical to [`LemmaIndex::build`].
    pub fn build_split(cat: &Catalog, num_segments: usize, threads: usize) -> SegmentedIndex {
        let n = num_segments.max(1);
        let entities: Vec<&[String]> = cat.entity_ids().map(|e| cat.entity_lemmas(e)).collect();
        let types: Vec<&[String]> = cat.type_ids().map(|t| cat.type_lemmas(t)).collect();
        let e_chunk = entities.len().div_ceil(n).max(1);
        let t_chunk = types.len().div_ceil(n).max(1);
        let segments = (0..n)
            .map(|i| {
                let es = &entities
                    [(i * e_chunk).min(entities.len())..((i + 1) * e_chunk).min(entities.len())];
                let ts =
                    &types[(i * t_chunk).min(types.len())..((i + 1) * t_chunk).min(types.len())];
                Arc::new(LemmaIndex::build_from_lists(es, ts, threads))
            })
            .collect();
        SegmentedIndex::from_segments(segments)
    }

    /// Grows the index over an append-only catalog change by building **one
    /// new segment** over just the appended slice — no existing segment is
    /// rebuilt, re-persisted, or even re-read. The result's probes are
    /// bit-identical to a monolithic rebuild over `grown` (the global-state
    /// refresh recomputes every derived statistic; see the module docs).
    ///
    /// Returns [`ExtendError`] if `grown` is not an append-only superset of
    /// the catalog this index covers.
    pub fn append(&self, grown: &Catalog, threads: usize) -> Result<SegmentedIndex, ExtendError> {
        let base_entities = self.num_indexed_entities();
        let base_types = self.num_indexed_types();
        if grown.num_entities() < base_entities {
            return Err(ExtendError::BaseShrunk {
                what: "entities",
                base: base_entities,
                grown: grown.num_entities(),
            });
        }
        if grown.num_types() < base_types {
            return Err(ExtendError::BaseShrunk {
                what: "types",
                base: base_types,
                grown: grown.num_types(),
            });
        }
        self.verify_prefix(grown)?;
        let mut segments = self.segments.clone();
        if grown.num_entities() > base_entities || grown.num_types() > base_types {
            let entities: Vec<&[String]> = (base_entities..grown.num_entities())
                .map(|e| grown.entity_lemmas(EntityId(e as u32)))
                .collect();
            let types: Vec<&[String]> = (base_types..grown.num_types())
                .map(|t| grown.type_lemmas(TypeId(t as u32)))
                .collect();
            segments.push(Arc::new(LemmaIndex::build_from_lists(&entities, &types, threads)));
        }
        let mut out = SegmentedIndex::from_segments(segments);
        out.parallel_probe = self.parallel_probe;
        Ok(out)
    }

    /// Checks that this index's covered slice is exactly the prefix of
    /// `grown`, comparing per-owner lemma counts and normalized text (the
    /// form every derived artifact is a function of).
    fn verify_prefix(&self, grown: &Catalog) -> Result<(), ExtendError> {
        for (si, seg) in self.segments.iter().enumerate() {
            for local in 0..seg.num_indexed_entities() as u32 {
                let global = EntityId(self.entity_bases[si] + local);
                seg_owner_check(
                    seg,
                    RefKind::Entity,
                    local,
                    grown.entity_lemmas(global),
                    global.0,
                )?;
            }
            for local in 0..seg.num_indexed_types() as u32 {
                let global = TypeId(self.type_bases[si] + local);
                seg_owner_check(seg, RefKind::Type, local, grown.type_lemmas(global), global.0)?;
            }
        }
        Ok(())
    }

    /// Verifies that this index covers exactly `cat` (count match + lemma
    /// text match on normalized form), the segmented analogue of
    /// [`LemmaIndex::verify_catalog`].
    pub fn verify_catalog(&self, cat: &Catalog) -> Result<(), String> {
        if self.num_indexed_entities() != cat.num_entities() {
            return Err(format!(
                "index covers {} entities, catalog has {}",
                self.num_indexed_entities(),
                cat.num_entities()
            ));
        }
        if self.num_indexed_types() != cat.num_types() {
            return Err(format!(
                "index covers {} types, catalog has {}",
                self.num_indexed_types(),
                cat.num_types()
            ));
        }
        self.verify_prefix(cat).map_err(|e| e.to_string())
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The segments, in catalog order.
    pub fn segments(&self) -> &[Arc<LemmaIndex>] {
        &self.segments
    }

    /// Entities covered (sum over segments).
    pub fn num_indexed_entities(&self) -> usize {
        *self.entity_bases.last().unwrap() as usize
    }

    /// Types covered (sum over segments).
    pub fn num_indexed_types(&self) -> usize {
        *self.type_bases.last().unwrap() as usize
    }

    /// Total indexed lemmas (sum over segments).
    pub fn num_lemmas(&self) -> usize {
        self.segments.iter().map(|s| s.num_lemmas()).sum()
    }

    /// The collection-wide similarity engine: the single segment's own
    /// engine, or the derived global engine (identical to the monolithic
    /// build's) when sharded.
    pub fn engine(&self) -> &SimEngine {
        match &self.global {
            Some(g) => &g.engine,
            None => self.segments[0].engine(),
        }
    }

    /// Whether multi-segment probes fan out on scoped threads (default:
    /// sequential, which also enables cross-segment upper-bound pruning).
    /// Results are identical either way.
    pub fn set_parallel_probe(&mut self, on: bool) {
        self.parallel_probe = on;
    }

    /// `(probed, skipped)` segment counters accumulated by multi-segment
    /// fan-outs (a single-segment index never touches them).
    pub fn probe_stats(&self) -> (u64, u64) {
        (
            self.segments_probed.load(Ordering::Relaxed),
            self.segments_skipped.load(Ordering::Relaxed),
        )
    }

    /// Content digest: the inner index's digest for a single segment (so
    /// monolithic cache fingerprints carry over), a combined hash of the
    /// per-segment digests and slice bounds otherwise.
    pub fn content_digest(&self) -> u64 {
        self.content_digest
    }

    /// Prepares a query document (collection-wide statistics).
    pub fn doc(&self, text: &str) -> TextDoc {
        match &self.global {
            Some(g) => g.engine.doc(text),
            None => self.segments[0].doc(text),
        }
    }

    /// See [`LemmaIndex::entity_candidates_mode`]; fans out over segments.
    pub fn entity_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>> {
        match &self.global {
            None => {
                self.segments[0].entity_candidates_mode(query, k, rescoring_factor, mode, scratch)
            }
            Some(g) => {
                self.owner_candidates_multi(
                    g,
                    query,
                    RefKind::Entity,
                    k,
                    rescoring_factor,
                    mode,
                    scratch,
                );
                scratch
                    .owners
                    .iter()
                    .map(|&(owner, score)| Match { id: EntityId(owner), score })
                    .collect()
            }
        }
    }

    /// See [`LemmaIndex::type_candidates_mode`]; fans out over segments.
    pub fn type_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>> {
        match &self.global {
            None => {
                self.segments[0].type_candidates_mode(query, k, rescoring_factor, mode, scratch)
            }
            Some(g) => {
                self.owner_candidates_multi(
                    g,
                    query,
                    RefKind::Type,
                    k,
                    rescoring_factor,
                    mode,
                    scratch,
                );
                scratch
                    .owners
                    .iter()
                    .map(|&(owner, score)| Match { id: TypeId(owner), score })
                    .collect()
            }
        }
    }

    /// Thread-local-scratch convenience, mirroring
    /// [`LemmaIndex::entity_candidates`].
    pub fn entity_candidates(&self, query: &TextDoc, k: usize) -> Vec<Match<EntityId>> {
        crate::index::SHARED_SCRATCH.with(|s| {
            self.entity_candidates_with(
                query,
                k,
                crate::index::DEFAULT_RESCORING_FACTOR,
                &mut s.borrow_mut(),
            )
        })
    }

    /// Thread-local-scratch convenience, mirroring
    /// [`LemmaIndex::type_candidates`].
    pub fn type_candidates(&self, query: &TextDoc, k: usize) -> Vec<Match<TypeId>> {
        crate::index::SHARED_SCRATCH.with(|s| {
            self.type_candidates_with(
                query,
                k,
                crate::index::DEFAULT_RESCORING_FACTOR,
                &mut s.borrow_mut(),
            )
        })
    }

    /// [`ProbeMode::Auto`] convenience (see `entity_candidates_mode`).
    pub fn entity_candidates_with(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>> {
        self.entity_candidates_mode(query, k, rescoring_factor, ProbeMode::Auto, scratch)
    }

    /// [`ProbeMode::Auto`] convenience (see `type_candidates_mode`).
    pub fn type_candidates_with(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>> {
        self.type_candidates_mode(query, k, rescoring_factor, ProbeMode::Auto, scratch)
    }

    /// See [`LemmaIndex::entity_profile`]; routes to the owning segment.
    pub fn entity_profile(&self, query: &TextDoc, e: EntityId) -> StringSim {
        match &self.global {
            None => self.segments[0].entity_profile(query, e),
            Some(g) => {
                let si = locate(&self.entity_bases, e.raw());
                let seg = &self.segments[si];
                let local = e.raw() - self.entity_bases[si];
                best_profile(&g.engine, query, &g.per_seg[si].docs, seg.entity_lemma_row(local))
            }
        }
    }

    /// See [`LemmaIndex::type_profile`]; routes to the owning segment.
    pub fn type_profile(&self, query: &TextDoc, t: TypeId) -> StringSim {
        match &self.global {
            None => self.segments[0].type_profile(query, t),
            Some(g) => {
                let si = locate(&self.type_bases, t.raw());
                let seg = &self.segments[si];
                let local = t.raw() - self.type_bases[si];
                best_profile(&g.engine, query, &g.per_seg[si].docs, seg.type_lemma_row(local))
            }
        }
    }

    /// Multi-segment fan-out: per-segment overlap shortlists merged under
    /// (overlap desc, global rank asc), cosine-rescored against refreshed
    /// docs, deduplicated to the best score per owner — leaving the top-`k`
    /// `(global owner, score)` pairs in `scratch.owners`, exactly as the
    /// monolithic [`LemmaIndex`] pass would.
    #[allow(clippy::too_many_arguments)]
    fn owner_candidates_multi(
        &self,
        g: &GlobalState,
        query: &TextDoc,
        kind: RefKind,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) {
        let shortlist = k.saturating_mul(rescoring_factor).max(16);
        if self.parallel_probe {
            self.fan_out_parallel(g, query, kind, shortlist, mode, scratch);
        } else {
            self.fan_out_sequential(g, query, kind, shortlist, mode, scratch);
        }
        // Rescore the merged shortlist by exact cosine against the refreshed
        // (= monolithic) documents, then reduce to best-per-owner.
        let mut merged = std::mem::take(&mut scratch.merged);
        for entry in merged.iter_mut() {
            let doc = &g.per_seg[entry.2 as usize].docs[entry.3 as usize];
            entry.0 = cosine(&query.vec, &doc.vec);
        }
        merged.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let owner_bases = match kind {
            RefKind::Entity => &self.entity_bases,
            RefKind::Type => &self.type_bases,
        };
        let owners = &mut scratch.owners;
        owners.clear();
        owners.extend(merged.iter().map(|&(score, _, si, li)| {
            let owner = self.segments[si as usize].lemma_owner(li) + owner_bases[si as usize];
            (owner, score)
        }));
        scratch.merged = merged;
        owners.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.total_cmp(&a.1)));
        owners.dedup_by_key(|p| p.0);
        owners.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        owners.truncate(k);
    }

    /// Sequential fan-out with cross-segment pruning: a segment whose
    /// best-possible overlap (sum of its query-term upper bounds, with the
    /// [`WAND_SAFETY`] margin) cannot beat the current merged threshold is
    /// skipped entirely. Admissible for the same reason the WAND skip is —
    /// and ties are safe to skip because every lemma of a later segment has
    /// a larger global rank than every already-merged lemma, so at equal
    /// overlap it loses the tie-break anyway.
    fn fan_out_sequential(
        &self,
        g: &GlobalState,
        query: &TextDoc,
        kind: RefKind,
        shortlist: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) {
        scratch.merged.clear();
        let mut threshold = f64::NEG_INFINITY;
        let mut probed = 0u64;
        let mut skipped = 0u64;
        for si in 0..self.segments.len() {
            let seg = &self.segments[si];
            let derived = &g.per_seg[si];
            let (bound, total_postings) =
                gather_terms(seg, derived, &g.engine, query, kind, scratch);
            if scratch.wand_terms.is_empty() {
                continue;
            }
            if scratch.merged.len() >= shortlist
                && shortlist > 0
                && bound * WAND_SAFETY <= threshold
            {
                skipped += 1;
                continue;
            }
            probed += 1;
            let postings = seg.postings(kind);
            run_overlap(postings, seg.num_lemmas(), shortlist, mode, total_postings, scratch);
            merge_hits(g, kind, si as u32, derived.entity_lemma_count, scratch);
            if scratch.merged.len() > shortlist && shortlist > 0 {
                scratch.merged.select_nth_unstable_by(shortlist - 1, |a, b| {
                    b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
                });
                scratch.merged.truncate(shortlist);
            }
            if scratch.merged.len() >= shortlist && shortlist > 0 {
                threshold = scratch.merged.iter().fold(f64::INFINITY, |worst, e| worst.min(e.0));
            }
        }
        self.segments_probed.fetch_add(probed, Ordering::Relaxed);
        self.segments_skipped.fetch_add(skipped, Ordering::Relaxed);
    }

    /// Parallel fan-out: one scoped thread per segment, each with its own
    /// scratch (no shared threshold → no cross-segment pruning), merged
    /// after the barrier. Same results as the sequential path.
    fn fan_out_parallel(
        &self,
        g: &GlobalState,
        query: &TextDoc,
        kind: RefKind,
        shortlist: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) {
        let per_seg: Vec<Vec<(f64, u32, u32, u32)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.segments.len())
                .map(|si| {
                    scope.spawn(move || {
                        let seg = &self.segments[si];
                        let derived = &g.per_seg[si];
                        let mut local = ProbeScratch::new();
                        let (_, total_postings) =
                            gather_terms(seg, derived, &g.engine, query, kind, &mut local);
                        if local.wand_terms.is_empty() {
                            return Vec::new();
                        }
                        let postings = seg.postings(kind);
                        run_overlap(
                            postings,
                            seg.num_lemmas(),
                            shortlist,
                            mode,
                            total_postings,
                            &mut local,
                        );
                        merge_hits(g, kind, si as u32, derived.entity_lemma_count, &mut local);
                        local.merged
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("segment probe worker")).collect()
        });
        scratch.merged.clear();
        let mut probed = 0u64;
        for hits in per_seg {
            if !hits.is_empty() {
                probed += 1;
            }
            scratch.merged.extend(hits);
        }
        if scratch.merged.len() > shortlist && shortlist > 0 {
            scratch.merged.select_nth_unstable_by(shortlist - 1, |a, b| {
                b.0.total_cmp(&a.0).then(a.1.cmp(&b.1))
            });
            scratch.merged.truncate(shortlist);
        }
        self.segments_probed.fetch_add(probed, Ordering::Relaxed);
    }
}

impl CandidateIndex for SegmentedIndex {
    fn doc(&self, text: &str) -> TextDoc {
        SegmentedIndex::doc(self, text)
    }
    fn entity_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<EntityId>> {
        SegmentedIndex::entity_candidates_mode(self, query, k, rescoring_factor, mode, scratch)
    }
    fn type_candidates_mode(
        &self,
        query: &TextDoc,
        k: usize,
        rescoring_factor: usize,
        mode: ProbeMode,
        scratch: &mut ProbeScratch,
    ) -> Vec<Match<TypeId>> {
        SegmentedIndex::type_candidates_mode(self, query, k, rescoring_factor, mode, scratch)
    }
    fn entity_profile(&self, query: &TextDoc, e: EntityId) -> StringSim {
        SegmentedIndex::entity_profile(self, query, e)
    }
    fn type_profile(&self, query: &TextDoc, t: TypeId) -> StringSim {
        SegmentedIndex::type_profile(self, query, t)
    }
    fn content_digest(&self) -> u64 {
        SegmentedIndex::content_digest(self)
    }
}

/// Gathers the query terms visible in one segment, in ascending **global**
/// token order: local posting-row bounds, global-IDF upper bounds, global
/// token ids (so WAND's tie sort and the exhaustive accumulation order both
/// match the monolithic pass bit for bit). Returns the segment's total
/// upper bound and posting volume.
fn gather_terms(
    seg: &LemmaIndex,
    derived: &SegDerived,
    engine: &SimEngine,
    query: &TextDoc,
    kind: RefKind,
    scratch: &mut ProbeScratch,
) -> (f64, usize) {
    let postings = seg.postings(kind);
    scratch.wand_terms.clear();
    let mut bound = 0.0f64;
    let mut total_postings = 0usize;
    for &tok in &query.token_set {
        if Vocab::is_oov(tok) {
            continue;
        }
        let local = derived.g2l[tok as usize];
        if local == UNSET {
            continue;
        }
        let (start, end) = postings.row_bounds(local);
        if start == end {
            continue;
        }
        let ub = engine.idf().idf(tok);
        bound += ub;
        total_postings += (end - start) as usize;
        scratch.wand_terms.push(WandTerm { tok, ub, start, end, pos: 0 });
    }
    (bound, total_postings)
}

/// Converts one segment's overlap shortlist (`scratch.hits`, local lemma
/// indices) into merge entries carrying the **global per-kind lemma rank**
/// (= the monolithic lemma id's order within the kind) for tie-breaking.
fn merge_hits(
    g: &GlobalState,
    kind: RefKind,
    si: u32,
    entity_lemma_count: u32,
    scratch: &mut ProbeScratch,
) {
    let (hits, merged) = (&scratch.hits, &mut scratch.merged);
    merged.extend(hits.iter().map(|&(li, overlap)| {
        let rank = match kind {
            RefKind::Entity => g.entity_rank_bases[si as usize] + li,
            RefKind::Type => g.type_rank_bases[si as usize] + (li - entity_lemma_count),
        };
        (overlap, rank, si, li)
    }));
}

/// Element-wise max profile over an owner's lemma documents.
fn best_profile(
    engine: &SimEngine,
    query: &TextDoc,
    docs: &[TextDoc],
    lemma_idxs: &[u32],
) -> StringSim {
    let mut best = StringSim::default();
    for &li in lemma_idxs {
        let p = engine.profile(query, &docs[li as usize]);
        best.max_with(&p);
    }
    best
}

/// Segment owning global id `id` under prefix-sum `bases` (`len = n + 1`).
fn locate(bases: &[u32], id: u32) -> usize {
    debug_assert!(id < *bases.last().unwrap());
    bases.partition_point(|&b| b <= id) - 1
}

/// One owner's slice-vs-index lemma check (append-only verification).
fn seg_owner_check(
    seg: &LemmaIndex,
    kind: RefKind,
    local: u32,
    texts: &[String],
    global_owner: u32,
) -> Result<(), ExtendError> {
    let (what, row) = match kind {
        RefKind::Entity => ("entity", seg.entity_lemma_row(local)),
        RefKind::Type => ("type", seg.type_lemma_row(local)),
    };
    if row.len() != texts.len() {
        return Err(ExtendError::BaseChanged {
            what,
            owner: global_owner,
            detail: format!("lemma count changed from {} to {}", row.len(), texts.len()),
        });
    }
    for (&li, text) in row.iter().zip(texts) {
        if seg.lemma_norm(li) != normalize(text) {
            return Err(ExtendError::BaseChanged {
                what,
                owner: global_owner,
                detail: format!("lemma {text:?} was reworded"),
            });
        }
    }
    Ok(())
}

/// Replays every segment's stored token sequences in monolithic build order
/// (entity lemmas across segments, then type lemmas), interning a union
/// vocabulary and recounting IDF — the multi-base generalization of
/// [`LemmaIndex::extend`]'s replay. Pure integer/float work.
fn derive_global(segments: &[Arc<LemmaIndex>]) -> GlobalState {
    let n = segments.len();
    let entity_counts: Vec<u32> = segments.iter().map(|s| s.entity_lemma_total()).collect();
    let mut vocab = Vocab::new();
    let mut l2g: Vec<Vec<u32>> =
        segments.iter().map(|s| vec![UNSET; s.engine().vocab().len()]).collect();
    let mut rows: Vec<Vec<Vec<u32>>> =
        segments.iter().map(|s| vec![Vec::new(); s.num_lemmas()]).collect();

    let mut remap_row = |si: usize, li: u32| {
        let seg = &segments[si];
        let seg_vocab = seg.engine().vocab();
        let row: Vec<u32> = seg
            .lemma_token_row(li)
            .iter()
            .map(|&old| {
                let mapped = &mut l2g[si][old as usize];
                if *mapped == UNSET {
                    *mapped = vocab.intern(seg_vocab.word(old).expect("token id in vocab"));
                }
                *mapped
            })
            .collect();
        rows[si][li as usize] = row;
    };
    // Monolithic interning order: every segment's entity-lemma prefix in
    // segment order, then every segment's type-lemma suffix. (Entity ids are
    // partitioned contiguously across segments, so this is exactly the order
    // `LemmaIndex::build` walks the union catalog's lemmas.)
    for (si, &count) in entity_counts.iter().enumerate() {
        for li in 0..count {
            remap_row(si, li);
        }
    }
    for si in 0..n {
        for li in entity_counts[si]..segments[si].num_lemmas() as u32 {
            remap_row(si, li);
        }
    }

    // IDF recount over the same stream, as `SimEngineBuilder::freeze` would.
    let mut idf = IdfTable::new(vocab.len());
    for (si, seg_rows) in rows.iter().enumerate() {
        for row in seg_rows.iter().take(entity_counts[si] as usize) {
            idf.add_document(&to_sorted_set(row.clone()));
        }
    }
    for (si, seg_rows) in rows.iter().enumerate() {
        for row in seg_rows.iter().skip(entity_counts[si] as usize) {
            idf.add_document(&to_sorted_set(row.clone()));
        }
    }
    let engine = SimEngine::from_parts(vocab, idf);

    // Per-segment refresh: global→local token maps and documents rebuilt
    // from the remapped sequences against the global IDF — bitwise equal to
    // what a monolithic build would prepare for the same lemmas.
    let vocab_len = engine.vocab().len();
    let per_seg: Vec<SegDerived> = segments
        .iter()
        .enumerate()
        .map(|(si, seg)| {
            let mut g2l = vec![UNSET; vocab_len];
            for (local, &global) in l2g[si].iter().enumerate() {
                if global != UNSET {
                    g2l[global as usize] = local as u32;
                }
            }
            let docs: Vec<TextDoc> = (0..seg.num_lemmas() as u32)
                .map(|li| {
                    engine
                        .doc_from_token_ids(seg.lemma_norm(li).to_string(), &rows[si][li as usize])
                })
                .collect();
            SegDerived { docs, g2l, entity_lemma_count: entity_counts[si] }
        })
        .collect();

    let mut entity_rank_bases = Vec::with_capacity(n);
    let mut type_rank_bases = Vec::with_capacity(n);
    let (mut e_acc, mut t_acc) = (0u32, 0u32);
    for (si, seg) in segments.iter().enumerate() {
        entity_rank_bases.push(e_acc);
        type_rank_bases.push(t_acc);
        e_acc += entity_counts[si];
        t_acc += seg.num_lemmas() as u32 - entity_counts[si];
    }

    GlobalState { engine, per_seg, entity_rank_bases, type_rank_bases }
}

/// Digest rule described on [`SegmentedIndex::content_digest`].
fn combined_digest(segments: &[Arc<LemmaIndex>]) -> u64 {
    if segments.len() == 1 {
        return segments[0].content_digest();
    }
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    "webtable-segmented-index".hash(&mut h);
    segments.len().hash(&mut h);
    for seg in segments {
        seg.content_digest().hash(&mut h);
        seg.num_indexed_entities().hash(&mut h);
        seg.num_indexed_types().hash(&mut h);
    }
    h.finish()
}

//! mmap-backed snapshot loading: `load_mmap` must produce an index
//! **bit-identical** to the heap `load` (layout, digest, probes), keep
//! every validation layer active (truncation, bit rot, versioning), stay
//! usable after the source file is renamed or deleted, and never exhibit
//! UB or a panic on malformed mapped bytes.

use std::path::PathBuf;

use webtable_catalog::{Catalog, CatalogBuilder};
use webtable_text::{
    LemmaIndex, ProbeScratch, SectionSource, SnapshotError, DEFAULT_RESCORING_FACTOR,
};

fn figure1_catalog() -> Catalog {
    let mut b = CatalogBuilder::new();
    let person = b.add_type("person", &["people"]).unwrap();
    let physicist = b.add_type("physicist", &[]).unwrap();
    let book = b.add_type("book", &["title"]).unwrap();
    b.add_subtype(physicist, person);
    b.add_entity("Albert Einstein", &["A. Einstein", "Einstein"], &[physicist]).unwrap();
    b.add_entity("Russell Stannard", &["Stannard"], &[person]).unwrap();
    b.add_entity("The Time and Space of Uncle Albert", &[], &[book]).unwrap();
    b.add_entity("Relativity: The Special and the General Theory", &["Relativity"], &[book])
        .unwrap();
    b.finish().unwrap()
}

/// A fresh snapshot file in the temp dir, named for this test + process so
/// parallel test binaries never collide.
fn snapshot_file(tag: &str) -> (LemmaIndex, PathBuf) {
    let built = LemmaIndex::build(&figure1_catalog());
    let path =
        std::env::temp_dir().join(format!("webtable-mmap-{tag}-{}.snap", std::process::id()));
    built.save(&path).expect("save");
    (built, path)
}

fn assert_indistinguishable(a: &LemmaIndex, b: &LemmaIndex, ctx: &str) {
    assert_eq!(a.content_digest(), b.content_digest(), "{ctx}: digest");
    assert_eq!(a.num_lemmas(), b.num_lemmas(), "{ctx}: lemma count");
    let (la, lb) = (a.layout(), b.layout());
    assert_eq!(la.entity_posting_offsets, lb.entity_posting_offsets, "{ctx}: entity offsets");
    assert_eq!(la.entity_posting_values, lb.entity_posting_values, "{ctx}: entity postings");
    assert_eq!(la.type_posting_offsets, lb.type_posting_offsets, "{ctx}: type offsets");
    assert_eq!(la.type_posting_values, lb.type_posting_values, "{ctx}: type postings");
    assert_eq!(la.lemma_token_offsets, lb.lemma_token_offsets, "{ctx}: lemma token offsets");
    assert_eq!(la.lemma_token_values, lb.lemma_token_values, "{ctx}: lemma token values");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(la.entity_token_ub), bits(lb.entity_token_ub), "{ctx}: entity bounds");
    assert_eq!(bits(la.type_token_ub), bits(lb.type_token_ub), "{ctx}: type bounds");
    let mut scratch = ProbeScratch::new();
    for text in ["Albert Einstein", "A. Einstein", "Relativity", "people", "zzz unseen", ""] {
        let (qa, qb) = (a.doc(text), b.doc(text));
        assert_eq!(qa.vec.pairs(), qb.vec.pairs(), "{ctx}: {text:?} vector");
        assert_eq!(
            a.entity_candidates_with(&qa, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            b.entity_candidates_with(&qb, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            "{ctx}: {text:?} entity candidates"
        );
        assert_eq!(
            a.type_candidates_with(&qa, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            b.type_candidates_with(&qb, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            "{ctx}: {text:?} type candidates"
        );
    }
}

#[test]
fn mmap_load_is_bit_identical_to_heap_load_and_build() {
    let (built, path) = snapshot_file("equiv");
    let heap = LemmaIndex::load(&path).expect("heap load");
    let mapped = LemmaIndex::load_mmap(&path).expect("mmap load");
    assert_indistinguishable(&mapped, &heap, "mmap vs heap");
    assert_indistinguishable(&mapped, &built, "mmap vs build");
    // A freshly built index owns its tables; loaded ones view the
    // snapshot buffer (on little-endian targets, which CI is).
    assert!(!built.is_zero_copy());
    if cfg!(target_endian = "little") {
        assert!(mapped.is_zero_copy(), "mmap load must wire views");
        assert!(heap.is_zero_copy(), "heap load views its owned buffer");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mapped_index_survives_source_rename_and_delete() {
    let (built, path) = snapshot_file("rename");
    let mapped = LemmaIndex::load_mmap(&path).expect("mmap load");
    let renamed = path.with_extension("renamed");
    std::fs::rename(&path, &renamed).expect("rename");
    assert_indistinguishable(&mapped, &built, "after rename");
    std::fs::remove_file(&renamed).expect("delete");
    // POSIX keeps the pages of an unlinked file alive until the last
    // mapping drops; the index keeps serving. (Concurrent *truncation*
    // is out of contract — snapshot writers only replace via rename.)
    assert_indistinguishable(&mapped, &built, "after delete");
}

#[test]
fn truncated_mapped_file_is_a_typed_error() {
    let (_, path) = snapshot_file("trunc");
    let full = std::fs::read(&path).unwrap();
    for keep in [full.len() / 2, 100, 57] {
        std::fs::write(&path, &full[..keep]).unwrap();
        match LemmaIndex::load_mmap(&path) {
            Err(SnapshotError::Truncated { .. }) => {}
            other => panic!("keep={keep}: expected Truncated, got {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_mapped_payload_is_a_typed_error() {
    let (_, path) = snapshot_file("flip");
    let mut bytes = std::fs::read(&path).unwrap();
    let payload_start = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
    let mid = payload_start + (bytes.len() - payload_start) / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();
    match LemmaIndex::load_mmap(&path) {
        Err(SnapshotError::ChecksumMismatch { .. }) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn non_current_format_versions_are_rejected() {
    // Older files would mis-parse the padded sections of the v3 reader
    // (and v3 files the unpadded older readers), so the version check is
    // an exact match in both directions.
    let (_, path) = snapshot_file("version");
    let mut bytes = std::fs::read(&path).unwrap();
    for wrong in [1u32, 2, 4, 0] {
        bytes[8..12].copy_from_slice(&wrong.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match LemmaIndex::load_mmap(&path) {
            Err(SnapshotError::UnsupportedVersion { found, supported: 3 }) if found == wrong => {}
            other => panic!("version {wrong}: expected UnsupportedVersion, got {other:?}"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn heap_source_and_mapped_source_run_the_same_pipeline() {
    // `from_snapshot_source` is the single loader behind both paths; a
    // heap source must behave exactly like a mapping (misaligned or
    // big-endian slices silently decode instead of viewing — covered by
    // unit tests in `webtable_text::mmap`).
    let (built, path) = snapshot_file("source");
    let bytes = std::fs::read(&path).unwrap();
    let via_source =
        LemmaIndex::from_snapshot_source(SectionSource::from_vec(bytes.clone())).expect("source");
    let via_bytes = LemmaIndex::from_snapshot_bytes(&bytes).expect("bytes");
    assert_indistinguishable(&via_source, &via_bytes, "source vs bytes");
    assert_indistinguishable(&via_source, &built, "source vs build");
    let _ = std::fs::remove_file(&path);
}

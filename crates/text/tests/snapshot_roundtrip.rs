//! Snapshot round-trip: `save` → `load` must reconstruct a **bit-identical**
//! index (same `IndexLayout`, same `content_digest`, same probe results)
//! with zero re-tokenization, and every failure mode — truncation, foreign
//! files, future formats, bit rot, digest forgery — must surface as a typed
//! [`SnapshotError`], never a panic or a partially-initialized index.

use proptest::prelude::*;
use webtable_catalog::{generate_world, Catalog, CatalogBuilder, WorldConfig};
use webtable_text::snapshot::{FORMAT_VERSION, MAGIC};
use webtable_text::{
    IndexLayout, LemmaIndex, ProbeScratch, SnapshotError, DEFAULT_RESCORING_FACTOR,
};

/// Builds a small randomized catalog from generated word material (same
/// scheme as `build_equivalence.rs`): types and entities named from the
/// word pools, round-robin membership, an alias lemma plus a
/// repeated-token lemma to stress term frequencies.
fn catalog_from(type_words: &[String], entity_words: &[Vec<String>]) -> Catalog {
    let mut b = CatalogBuilder::new();
    let mut types = Vec::new();
    for (i, w) in type_words.iter().enumerate() {
        types.push(b.add_type(format!("{w} type{i}"), &[w.as_str()]).unwrap());
    }
    if types.is_empty() {
        types.push(b.add_type("thing", &[]).unwrap());
    }
    for (j, words) in entity_words.iter().enumerate() {
        let name = format!("{} e{j}", words.join(" "));
        let alias = words.first().map(String::as_str).unwrap_or("x");
        let e = b.add_entity(name, &[alias], &[types[j % types.len()]]).unwrap();
        if words.len() > 1 {
            b.add_entity_lemma(e, &format!("{} {}", words[0], words[0]));
        }
    }
    b.finish().unwrap()
}

fn figure1_catalog() -> Catalog {
    let mut b = CatalogBuilder::new();
    let person = b.add_type("person", &["people"]).unwrap();
    let physicist = b.add_type("physicist", &[]).unwrap();
    let book = b.add_type("book", &["title"]).unwrap();
    b.add_subtype(physicist, person);
    b.add_entity("Albert Einstein", &["A. Einstein", "Einstein"], &[physicist]).unwrap();
    b.add_entity("Russell Stannard", &["Stannard"], &[person]).unwrap();
    b.add_entity("The Time and Space of Uncle Albert", &[], &[book]).unwrap();
    b.add_entity("Relativity: The Special and the General Theory", &["Relativity"], &[book])
        .unwrap();
    b.finish().unwrap()
}

fn assert_layouts_bit_identical(got: &IndexLayout<'_>, want: &IndexLayout<'_>, ctx: &str) {
    assert_eq!(got.entity_posting_offsets, want.entity_posting_offsets, "{ctx}: entity offsets");
    assert_eq!(got.entity_posting_values, want.entity_posting_values, "{ctx}: entity postings");
    assert_eq!(got.type_posting_offsets, want.type_posting_offsets, "{ctx}: type offsets");
    assert_eq!(got.type_posting_values, want.type_posting_values, "{ctx}: type postings");
    assert_eq!(got.entity_lemma_offsets, want.entity_lemma_offsets, "{ctx}: entity lemma offsets");
    assert_eq!(got.entity_lemma_values, want.entity_lemma_values, "{ctx}: entity lemma values");
    assert_eq!(got.type_lemma_offsets, want.type_lemma_offsets, "{ctx}: type lemma offsets");
    assert_eq!(got.type_lemma_values, want.type_lemma_values, "{ctx}: type lemma values");
    assert_eq!(got.lemma_token_offsets, want.lemma_token_offsets, "{ctx}: lemma token offsets");
    assert_eq!(got.lemma_token_values, want.lemma_token_values, "{ctx}: lemma token values");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(got.entity_token_ub), bits(want.entity_token_ub), "{ctx}: entity upper bounds");
    assert_eq!(bits(got.type_token_ub), bits(want.type_token_ub), "{ctx}: type upper bounds");
}

/// Round-trips through the byte format and asserts the reconstruction is
/// indistinguishable from the original: digest, layout, and probes.
fn assert_roundtrip(cat: &Catalog, queries: &[&str]) {
    let built = LemmaIndex::build(cat);
    let bytes = built.to_snapshot_bytes().expect("serialize");
    let loaded = LemmaIndex::from_snapshot_bytes(&bytes).expect("deserialize");
    assert_eq!(loaded.num_lemmas(), built.num_lemmas());
    assert_eq!(loaded.content_digest(), built.content_digest());
    assert_layouts_bit_identical(&loaded.layout(), &built.layout(), "roundtrip");
    let mut scratch = ProbeScratch::new();
    for text in queries {
        let qb = built.doc(text);
        let ql = loaded.doc(text);
        assert_eq!(qb.token_set, ql.token_set, "{text:?}");
        assert_eq!(qb.vec.pairs(), ql.vec.pairs(), "{text:?}");
        assert_eq!(
            built.entity_candidates_with(&qb, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            loaded.entity_candidates_with(&ql, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            "{text:?}"
        );
        assert_eq!(
            built.type_candidates_with(&qb, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            loaded.type_candidates_with(&ql, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            "{text:?}"
        );
    }
}

#[test]
fn roundtrip_is_bit_identical_on_figure1_catalog() {
    assert_roundtrip(
        &figure1_catalog(),
        &["Albert Einstein", "A. Einstein", "Relativity", "people", "zzz unseen", ""],
    );
}

#[test]
fn roundtrip_is_bit_identical_on_generated_world() {
    let w = generate_world(&WorldConfig::tiny(29)).unwrap();
    let queries: Vec<String> =
        w.catalog.entity_ids().take(5).map(|e| w.catalog.entity_name(e).to_string()).collect();
    let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
    assert_roundtrip(&w.catalog, &query_refs);
}

#[test]
fn file_save_load_roundtrip() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("webtable-snap-roundtrip-{}.idx", std::process::id()));
    let built = LemmaIndex::build(&figure1_catalog());
    built.save(&path).expect("save");
    let loaded = LemmaIndex::load(&path).expect("load");
    assert_eq!(loaded.content_digest(), built.content_digest());
    assert_layouts_bit_identical(&loaded.layout(), &built.layout(), "file roundtrip");
    let _ = std::fs::remove_file(&path);
}

/// The mmap path serves every string — vocabulary words and lemma
/// normalized text — straight from the mapping, and the zero-copy load is
/// bit-identical to both the built index and the heap load.
#[cfg(all(unix, target_pointer_width = "64"))]
#[test]
fn mmap_load_serves_strings_zero_copy_and_bit_identical() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("webtable-snap-zerocopy-{}.idx", std::process::id()));
    let w = generate_world(&WorldConfig::tiny(31)).unwrap();
    let built = LemmaIndex::build(&w.catalog);
    built.save(&path).expect("save");

    let mapped = LemmaIndex::load_mmap(&path).expect("mmap load");
    assert!(mapped.strings_are_zero_copy(), "mmap-loaded strings must be views into the mapping");
    assert!(!built.strings_are_zero_copy(), "a built index owns its strings");
    assert_eq!(mapped.content_digest(), built.content_digest());
    assert_layouts_bit_identical(&mapped.layout(), &built.layout(), "mmap zero-copy");

    let heap = LemmaIndex::load(&path).expect("heap load");
    assert_eq!(heap.content_digest(), mapped.content_digest());
    assert_layouts_bit_identical(&heap.layout(), &mapped.layout(), "heap vs mmap");
    // Same probe results through the shared scoring path.
    let mut scratch = ProbeScratch::new();
    for e in w.catalog.entity_ids().take(4) {
        let name = w.catalog.entity_name(e);
        let qm = mapped.doc(name);
        let qh = heap.doc(name);
        assert_eq!(
            mapped.entity_candidates_with(&qm, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            heap.entity_candidates_with(&qh, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
            "{name:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

// ------------------------------------------------------------- failures --

fn snapshot_bytes() -> Vec<u8> {
    LemmaIndex::build(&figure1_catalog()).to_snapshot_bytes().expect("serialize")
}

#[test]
fn truncated_file_is_a_typed_error_at_every_cut() {
    let bytes = snapshot_bytes();
    // Cut the file at a spread of lengths: inside the header, inside the
    // section table, on a page boundary, one short of complete.
    for cut in [0usize, 4, 7, 23, 55, 200, 4096, bytes.len() / 2, bytes.len() - 1] {
        let cut = cut.min(bytes.len() - 1);
        let err = LemmaIndex::from_snapshot_bytes(&bytes[..cut]).expect_err("must fail");
        assert!(
            matches!(err, SnapshotError::Truncated { .. } | SnapshotError::BadMagic),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn wrong_magic_is_rejected() {
    let mut bytes = snapshot_bytes();
    bytes[..8].copy_from_slice(b"NOTANIDX");
    assert!(matches!(LemmaIndex::from_snapshot_bytes(&bytes), Err(SnapshotError::BadMagic)));
    // A short garbage file is also BadMagic territory, not a panic.
    assert!(LemmaIndex::from_snapshot_bytes(b"hello").is_err());
    assert!(LemmaIndex::from_snapshot_bytes(b"").is_err());
}

#[test]
fn future_format_version_is_rejected() {
    let mut bytes = snapshot_bytes();
    // Version lives at bytes 8..12 (after the 8-byte magic).
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match LemmaIndex::from_snapshot_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn payload_bit_rot_is_caught_by_the_checksum() {
    let bytes = snapshot_bytes();
    // Flip one byte in the middle of the payload (past the first page).
    let mut corrupt = bytes.clone();
    let at = 4096 + (corrupt.len() - 4096) / 2;
    corrupt[at] ^= 0x40;
    assert!(
        matches!(
            LemmaIndex::from_snapshot_bytes(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ),
        "flipped payload byte at {at} must fail the checksum"
    );
}

#[test]
fn forged_content_digest_is_rejected() {
    let mut bytes = snapshot_bytes();
    // The stored content digest lives at bytes 24..32 (magic 8 + version 4
    // + section count 4 + config fingerprint 8).
    for b in bytes[24..32].iter_mut() {
        *b ^= 0xff;
    }
    assert!(matches!(
        LemmaIndex::from_snapshot_bytes(&bytes),
        Err(SnapshotError::DigestMismatch { .. })
    ));
}

#[test]
fn foreign_config_fingerprint_is_rejected() {
    let mut bytes = snapshot_bytes();
    // Config fingerprint lives at bytes 16..24.
    for b in bytes[16..24].iter_mut() {
        *b ^= 0xff;
    }
    assert!(matches!(
        LemmaIndex::from_snapshot_bytes(&bytes),
        Err(SnapshotError::ConfigMismatch { .. })
    ));
}

/// Reference copy of the format's payload checksum (FNV-1a 64 over 8-byte
/// LE words, zero-padded tail) so tampering tests can *fix* the checksum
/// and prove the content digest is the layer that catches them.
fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Flips the last byte of the section with the given id, then re-stamps a
/// valid payload checksum so only the digest can object.
fn tamper_section_with_fixed_checksum(bytes: &mut [u8], section_id: u32) {
    let section_count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let payload_start = u64::from_le_bytes(bytes[40..48].try_into().unwrap()) as usize;
    let (mut off, mut len) = (None, 0usize);
    for i in 0..section_count {
        let at = 56 + i * 24;
        if u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) == section_id {
            off = Some(u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize);
            len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
        }
    }
    let off = off.expect("section present");
    bytes[off + len - 1] ^= 0x01;
    let sum = checksum64(&bytes[payload_start..]);
    bytes[32..40].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn checksum_fixed_tampering_is_caught_by_the_digest() {
    // The digest must bind everything the loaded index serves from — not
    // just the CSR layouts. Altering stored TFIDF weights (section 11) or
    // vocabulary spellings (section 1) with a *re-stamped* checksum must
    // still fail, and fail at the digest layer.
    // Section 11's last byte is a weight bit and section 1's is an ASCII
    // letter of the last vocab word: both parse cleanly, so the digest is
    // the only layer left to object — and it must.
    for section_id in [11u32, 1] {
        let mut bytes = snapshot_bytes();
        tamper_section_with_fixed_checksum(&mut bytes, section_id);
        match LemmaIndex::from_snapshot_bytes(&bytes) {
            Err(SnapshotError::DigestMismatch { .. }) => {}
            other => panic!("section {section_id}: expected DigestMismatch, got {other:?}"),
        }
    }
}

#[test]
fn magic_constant_is_stable() {
    // The on-disk contract: first 8 bytes of every snapshot, forever.
    assert_eq!(&MAGIC, b"WTLEMIDX");
    // v2 added the alignment pad after f64 array counts; v3 pads the
    // lemma kind bytes and serves string tables zero-copy (mmap loader).
    assert_eq!(FORMAT_VERSION, 3);
    let bytes = snapshot_bytes();
    assert_eq!(&bytes[..8], b"WTLEMIDX");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn roundtrip_is_bit_identical_on_random_catalogs(
        type_words in proptest::collection::vec("[a-f]{1,5}", 0..4),
        entity_words in proptest::collection::vec(
            proptest::collection::vec("[a-h]{1,6}", 1..4),
            1..30,
        ),
    ) {
        let cat = catalog_from(&type_words, &entity_words);
        let queries: Vec<String> = entity_words.iter().take(3).map(|w| w.join(" ")).collect();
        let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        assert_roundtrip(&cat, &query_refs);
    }

    #[test]
    fn random_truncation_never_panics(
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = snapshot_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(LemmaIndex::from_snapshot_bytes(&bytes[..cut]).is_err());
    }
}

//! Parallel-build equivalence: `LemmaIndex::build_with_threads` must
//! produce a **bit-identical** index at every thread count — same CSR
//! offsets, same flat posting arrays, same WAND upper-bound tables, and
//! identical probe results. The serial build (1 thread) is the reference;
//! randomized catalogs come from a property-driven `CatalogBuilder` and
//! from the seeded world generator.

use proptest::prelude::*;
use webtable_catalog::{generate_world, Catalog, CatalogBuilder, WorldConfig};
use webtable_text::{IndexLayout, LemmaIndex, ProbeScratch, DEFAULT_RESCORING_FACTOR};

/// Builds a small randomized catalog from generated word material:
/// `type_words[i]` names type `i`, `entity_words[j]` names entity `j`
/// (suffixed to stay unique), with round-robin type membership and the
/// first word reused as an alias lemma so entities get multiple lemmas.
fn catalog_from(type_words: &[String], entity_words: &[Vec<String>]) -> Catalog {
    let mut b = CatalogBuilder::new();
    let mut types = Vec::new();
    for (i, w) in type_words.iter().enumerate() {
        types.push(b.add_type(format!("{w} type{i}"), &[w.as_str()]).unwrap());
    }
    if types.is_empty() {
        types.push(b.add_type("thing", &[]).unwrap());
    }
    for (j, words) in entity_words.iter().enumerate() {
        let name = format!("{} e{j}", words.join(" "));
        let alias = words.first().map(String::as_str).unwrap_or("x");
        let e = b.add_entity(name, &[alias], &[types[j % types.len()]]).unwrap();
        // A second alias with repeated tokens stresses term frequencies.
        if words.len() > 1 {
            b.add_entity_lemma(e, &format!("{} {}", words[0], words[0]));
        }
    }
    b.finish().unwrap()
}

/// Asserts every array of two layouts equal, with f64 tables compared by
/// bits (NaN-proof, and stricter than `==` about signed zeros).
fn assert_layouts_bit_identical(got: &IndexLayout<'_>, want: &IndexLayout<'_>, ctx: &str) {
    assert_eq!(got.entity_posting_offsets, want.entity_posting_offsets, "{ctx}: entity offsets");
    assert_eq!(got.entity_posting_values, want.entity_posting_values, "{ctx}: entity postings");
    assert_eq!(got.type_posting_offsets, want.type_posting_offsets, "{ctx}: type offsets");
    assert_eq!(got.type_posting_values, want.type_posting_values, "{ctx}: type postings");
    assert_eq!(got.entity_lemma_offsets, want.entity_lemma_offsets, "{ctx}: entity lemma offsets");
    assert_eq!(got.entity_lemma_values, want.entity_lemma_values, "{ctx}: entity lemma values");
    assert_eq!(got.type_lemma_offsets, want.type_lemma_offsets, "{ctx}: type lemma offsets");
    assert_eq!(got.type_lemma_values, want.type_lemma_values, "{ctx}: type lemma values");
    assert_eq!(got.lemma_token_offsets, want.lemma_token_offsets, "{ctx}: lemma token offsets");
    assert_eq!(got.lemma_token_values, want.lemma_token_values, "{ctx}: lemma token values");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(got.entity_token_ub), bits(want.entity_token_ub), "{ctx}: entity upper bounds");
    assert_eq!(bits(got.type_token_ub), bits(want.type_token_ub), "{ctx}: type upper bounds");
}

fn assert_parallel_builds_match_serial(cat: &Catalog, queries: &[&str]) {
    let serial = LemmaIndex::build_with_threads(cat, 1);
    let mut scratch = ProbeScratch::new();
    for threads in [2usize, 4, 8] {
        let par = LemmaIndex::build_with_threads(cat, threads);
        assert_eq!(par.num_lemmas(), serial.num_lemmas(), "threads={threads}");
        assert_eq!(par.content_digest(), serial.content_digest(), "threads={threads}");
        assert_layouts_bit_identical(
            &par.layout(),
            &serial.layout(),
            &format!("{threads} threads"),
        );
        // Probes through both indexes agree bit for bit as well.
        for text in queries {
            let qs = serial.doc(text);
            let qp = par.doc(text);
            assert_eq!(qs.token_set, qp.token_set, "threads={threads} {text:?}");
            assert_eq!(
                serial.entity_candidates_with(&qs, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
                par.entity_candidates_with(&qp, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
                "threads={threads} {text:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_build_is_bit_identical_on_random_catalogs(
        type_words in proptest::collection::vec("[a-f]{1,5}", 0..4),
        entity_words in proptest::collection::vec(
            proptest::collection::vec("[a-h]{1,6}", 1..4),
            1..40,
        ),
    ) {
        let cat = catalog_from(&type_words, &entity_words);
        let queries: Vec<String> = entity_words.iter().take(3).map(|w| w.join(" ")).collect();
        let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        assert_parallel_builds_match_serial(&cat, &query_refs);
    }
}

#[test]
fn parallel_build_is_bit_identical_on_generated_worlds() {
    for seed in [5u64, 13] {
        let w = generate_world(&WorldConfig::tiny(seed)).unwrap();
        let queries: Vec<String> =
            w.catalog.entity_ids().take(5).map(|e| w.catalog.entity_name(e).to_string()).collect();
        let query_refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        assert_parallel_builds_match_serial(&w.catalog, &query_refs);
    }
}

#[test]
fn thread_count_beyond_lemma_count_is_fine() {
    // More workers than lemmas: shards degenerate to singletons/empties.
    let mut b = CatalogBuilder::new();
    let t = b.add_type("thing", &[]).unwrap();
    b.add_entity("solo entity", &[], &[t]).unwrap();
    let cat = b.finish().unwrap();
    let serial = LemmaIndex::build_with_threads(&cat, 1);
    let par = LemmaIndex::build_with_threads(&cat, 64);
    assert_layouts_bit_identical(&par.layout(), &serial.layout(), "64 threads, 1 entity");
}

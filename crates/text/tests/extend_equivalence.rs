//! Incremental-growth equivalence: `LemmaIndex::extend` over an
//! append-only catalog change must be **bit-identical** to
//! `LemmaIndex::build` on the grown catalog — same content digest, same
//! CSR layout, same probe results — at every thread count, and must reject
//! non-append changes with a typed [`ExtendError`].

use proptest::prelude::*;
use webtable_catalog::{Catalog, CatalogBuilder};
use webtable_text::{ExtendError, IndexLayout, LemmaIndex, ProbeScratch, DEFAULT_RESCORING_FACTOR};

/// Deterministic catalog family: `build_catalog(t, e)` is an exact
/// id-prefix of `build_catalog(t', e')` whenever `t ≤ t'` and `e ≤ e'`.
/// An explicit root type keeps the hierarchy single-rooted, so `finish`
/// never appends a synthetic root that would shift type ids between the
/// base and the grown catalog.
fn build_catalog(n_types: usize, n_entities: usize) -> Catalog {
    let mut b = CatalogBuilder::new();
    let root = b.add_type("thing", &[]).unwrap();
    let mut types = vec![root];
    for i in 0..n_types {
        let t = b.add_type(format!("kind{i} category"), &[&format!("k{i}")]).unwrap();
        b.add_subtype(t, root);
        types.push(t);
    }
    for j in 0..n_entities {
        // Shared tokens ("entity", "alpha") across old and new lemmas
        // stress the old-id → new-id remap; the per-entity suffix keeps
        // names unique.
        let t = if types.len() > 1 { types[1 + j % (types.len() - 1)] } else { root };
        let e = b
            .add_entity(format!("entity alpha{j} item"), &[&format!("e{j}"), "alpha shared"], &[t])
            .unwrap();
        if j % 3 == 0 {
            b.add_entity_lemma(e, &format!("alpha alpha {j}"));
        }
    }
    b.finish().unwrap()
}

fn assert_layouts_bit_identical(got: &IndexLayout<'_>, want: &IndexLayout<'_>, ctx: &str) {
    assert_eq!(got.entity_posting_offsets, want.entity_posting_offsets, "{ctx}: entity offsets");
    assert_eq!(got.entity_posting_values, want.entity_posting_values, "{ctx}: entity postings");
    assert_eq!(got.type_posting_offsets, want.type_posting_offsets, "{ctx}: type offsets");
    assert_eq!(got.type_posting_values, want.type_posting_values, "{ctx}: type postings");
    assert_eq!(got.entity_lemma_offsets, want.entity_lemma_offsets, "{ctx}: entity lemma offsets");
    assert_eq!(got.entity_lemma_values, want.entity_lemma_values, "{ctx}: entity lemma values");
    assert_eq!(got.type_lemma_offsets, want.type_lemma_offsets, "{ctx}: type lemma offsets");
    assert_eq!(got.type_lemma_values, want.type_lemma_values, "{ctx}: type lemma values");
    assert_eq!(got.lemma_token_offsets, want.lemma_token_offsets, "{ctx}: lemma token offsets");
    assert_eq!(got.lemma_token_values, want.lemma_token_values, "{ctx}: lemma token values");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
    assert_eq!(bits(got.entity_token_ub), bits(want.entity_token_ub), "{ctx}: entity upper bounds");
    assert_eq!(bits(got.type_token_ub), bits(want.type_token_ub), "{ctx}: type upper bounds");
}

fn assert_extend_matches_rebuild(base_cat: &Catalog, grown_cat: &Catalog, queries: &[&str]) {
    let base = LemmaIndex::build(base_cat);
    let rebuilt = LemmaIndex::build(grown_cat);
    for threads in [1usize, 2, 4] {
        let extended = base.extend_with_threads(grown_cat, threads).expect("append-only growth");
        assert_eq!(extended.num_lemmas(), rebuilt.num_lemmas(), "threads={threads}");
        assert_eq!(extended.content_digest(), rebuilt.content_digest(), "threads={threads}");
        assert_layouts_bit_identical(
            &extended.layout(),
            &rebuilt.layout(),
            &format!("extend threads={threads}"),
        );
        let mut scratch = ProbeScratch::new();
        for text in queries {
            let qe = extended.doc(text);
            let qr = rebuilt.doc(text);
            assert_eq!(qe.token_set, qr.token_set, "threads={threads} {text:?}");
            assert_eq!(qe.vec.pairs(), qr.vec.pairs(), "threads={threads} {text:?}");
            assert_eq!(
                extended.entity_candidates_with(&qe, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
                rebuilt.entity_candidates_with(&qr, 8, DEFAULT_RESCORING_FACTOR, &mut scratch),
                "threads={threads} {text:?}"
            );
        }
    }
}

#[test]
fn extend_with_new_entities_matches_rebuild() {
    let base = build_catalog(3, 10);
    let grown = build_catalog(3, 25);
    assert_extend_matches_rebuild(&base, &grown, &["entity alpha3", "e17", "alpha shared", "k2"]);
}

#[test]
fn extend_with_new_entities_and_types_matches_rebuild() {
    let base = build_catalog(2, 8);
    let grown = build_catalog(6, 20);
    assert_extend_matches_rebuild(&base, &grown, &["entity alpha1 item", "k5", "alpha alpha 18"]);
}

#[test]
fn extend_with_no_growth_matches_rebuild() {
    let cat = build_catalog(3, 10);
    assert_extend_matches_rebuild(&cat, &cat, &["entity alpha3", "k1"]);
}

#[test]
fn chained_extends_match_single_rebuild() {
    let c1 = build_catalog(2, 6);
    let c2 = build_catalog(3, 14);
    let c3 = build_catalog(5, 30);
    let chained =
        LemmaIndex::build(&c1).extend(&c2).expect("first growth").extend(&c3).expect("second");
    let rebuilt = LemmaIndex::build(&c3);
    assert_eq!(chained.content_digest(), rebuilt.content_digest());
    assert_layouts_bit_identical(&chained.layout(), &rebuilt.layout(), "chained");
}

#[test]
fn shrunk_catalog_is_rejected() {
    let base = build_catalog(3, 10);
    let smaller = build_catalog(3, 4);
    let idx = LemmaIndex::build(&base);
    match idx.extend(&smaller) {
        Err(ExtendError::BaseShrunk { what, base, grown }) => {
            assert_eq!(what, "entities");
            assert!(grown < base, "{grown} < {base}");
        }
        other => panic!("expected BaseShrunk, got {other:?}"),
    }
}

#[test]
fn reworded_base_lemma_is_rejected() {
    let base = build_catalog(2, 5);
    let idx = LemmaIndex::build(&base);
    // Same counts, but entity 0's name differs: not an append-only change.
    let mut b = CatalogBuilder::new();
    let root = b.add_type("thing", &[]).unwrap();
    let mut types = vec![root];
    for i in 0..2 {
        let t = b.add_type(format!("kind{i} category"), &[&format!("k{i}")]).unwrap();
        b.add_subtype(t, root);
        types.push(t);
    }
    for j in 0..5usize {
        let name = if j == 0 {
            "entity REWORDED item".to_string()
        } else {
            format!("entity alpha{j} item")
        };
        let e = b.add_entity(name, &[&format!("e{j}"), "alpha shared"], &[types[1]]).unwrap();
        if j % 3 == 0 {
            b.add_entity_lemma(e, &format!("alpha alpha {j}"));
        }
    }
    let changed = b.finish().unwrap();
    match idx.extend(&changed) {
        Err(ExtendError::BaseChanged { what, owner, .. }) => {
            assert_eq!(what, "entity");
            assert_eq!(owner, 0);
        }
        other => panic!("expected BaseChanged, got {other:?}"),
    }
    // The failed extend must not have touched the base index.
    assert_eq!(idx.content_digest(), LemmaIndex::build(&base).content_digest());
}

#[test]
fn added_lemma_on_base_entity_is_rejected() {
    let base = build_catalog(2, 5);
    let idx = LemmaIndex::build(&base);
    let mut b = CatalogBuilder::new();
    let root = b.add_type("thing", &[]).unwrap();
    let mut types = vec![root];
    for i in 0..2 {
        let t = b.add_type(format!("kind{i} category"), &[&format!("k{i}")]).unwrap();
        b.add_subtype(t, root);
        types.push(t);
    }
    for j in 0..5usize {
        let e = b
            .add_entity(
                format!("entity alpha{j} item"),
                &[&format!("e{j}"), "alpha shared"],
                &[types[1]],
            )
            .unwrap();
        if j % 3 == 0 {
            b.add_entity_lemma(e, &format!("alpha alpha {j}"));
        }
        if j == 2 {
            b.add_entity_lemma(e, "a brand new alias");
        }
    }
    let changed = b.finish().unwrap();
    assert!(matches!(idx.extend(&changed), Err(ExtendError::BaseChanged { owner: 2, .. })));
}

#[test]
fn extend_then_snapshot_roundtrips() {
    // The grown index is a first-class index: snapshot round-trip holds.
    let base = build_catalog(2, 6);
    let grown = build_catalog(3, 15);
    let extended = LemmaIndex::build(&base).extend(&grown).expect("growth");
    let bytes = extended.to_snapshot_bytes().expect("serialize");
    let loaded = LemmaIndex::from_snapshot_bytes(&bytes).expect("deserialize");
    assert_eq!(loaded.content_digest(), extended.content_digest());
    assert_layouts_bit_identical(&loaded.layout(), &extended.layout(), "extend+snapshot");
    // And a snapshot-loaded index can itself be extended.
    let base_loaded = LemmaIndex::from_snapshot_bytes(
        &LemmaIndex::build(&base).to_snapshot_bytes().expect("serialize base"),
    )
    .expect("load base");
    let extended_from_loaded = base_loaded.extend(&grown).expect("extend a loaded index");
    assert_eq!(extended_from_loaded.content_digest(), extended.content_digest());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn extend_matches_rebuild_on_random_growth(
        base_entities in 1usize..15,
        added_entities in 0usize..15,
        base_types in 0usize..3,
        added_types in 0usize..3,
    ) {
        let base = build_catalog(base_types, base_entities);
        let grown = build_catalog(base_types + added_types, base_entities + added_entities);
        let queries = ["entity alpha2 item", "alpha shared", "k1", "zzz"];
        assert_extend_matches_rebuild(&base, &grown, &queries);
    }
}

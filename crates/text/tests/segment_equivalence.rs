//! Segmented-index equivalence: at segment count 1 the [`SegmentedIndex`]
//! must be **bit-identical** to the monolithic [`LemmaIndex`] (same layout,
//! same digest, same probes), and at 2/4/8 segments the cross-segment
//! top-k merge must reproduce the monolithic candidate lists bit for bit —
//! across probe modes, with sequential and parallel fan-out, and after
//! growing by [`SegmentedIndex::append`].

use std::sync::Arc;

use proptest::prelude::*;
use webtable_catalog::{generate_world, Catalog, CatalogBuilder, EntityId, TypeId, WorldConfig};
use webtable_text::{
    LemmaIndex, ProbeMode, ProbeScratch, SegmentedIndex, DEFAULT_RESCORING_FACTOR,
};

/// Deterministic catalog family: `build_catalog(t, e)` is an exact
/// id-prefix of `build_catalog(t', e')` whenever `t ≤ t'` and `e ≤ e'`
/// (same construction as `extend_equivalence.rs`).
fn build_catalog(n_types: usize, n_entities: usize) -> Catalog {
    let mut b = CatalogBuilder::new();
    let root = b.add_type("thing", &[]).unwrap();
    let mut types = vec![root];
    for i in 0..n_types {
        let t = b.add_type(format!("kind{i} category"), &[&format!("k{i}")]).unwrap();
        b.add_subtype(t, root);
        types.push(t);
    }
    for j in 0..n_entities {
        let t = if types.len() > 1 { types[1 + j % (types.len() - 1)] } else { root };
        let e = b
            .add_entity(format!("entity alpha{j} item"), &[&format!("e{j}"), "alpha shared"], &[t])
            .unwrap();
        if j % 3 == 0 {
            b.add_entity_lemma(e, &format!("alpha alpha {j}"));
        }
    }
    b.finish().unwrap()
}

/// Query texts exercising shared tokens, exact names, and OOV words.
fn queries_for(cat: &Catalog) -> Vec<String> {
    let mut qs: Vec<String> = cat
        .entity_ids()
        .take(6)
        .map(|e| cat.entity_name(e).to_string())
        .chain(cat.type_ids().take(3).map(|t| cat.type_name(t).to_string()))
        .collect();
    qs.push("alpha shared".into());
    qs.push("entity item".into());
    qs.push("zzz never-seen token".into());
    qs
}

/// Asserts that `seg` answers every query exactly like `mono`, across all
/// probe modes, for entities and types, including similarity profiles.
fn assert_probe_equivalence(
    mono: &LemmaIndex,
    seg: &SegmentedIndex,
    queries: &[String],
    ctx: &str,
) {
    let mut s1 = ProbeScratch::new();
    let mut s2 = ProbeScratch::new();
    for text in queries {
        let qm = mono.doc(text);
        let qs = seg.doc(text);
        assert_eq!(qm.token_set, qs.token_set, "{ctx}: token set for {text:?}");
        assert_eq!(qm.vec.pairs(), qs.vec.pairs(), "{ctx}: tfidf vec for {text:?}");
        for mode in [ProbeMode::Auto, ProbeMode::Exhaustive, ProbeMode::Wand] {
            for k in [1usize, 4, 8] {
                assert_eq!(
                    mono.entity_candidates_mode(&qm, k, DEFAULT_RESCORING_FACTOR, mode, &mut s1),
                    seg.entity_candidates_mode(&qs, k, DEFAULT_RESCORING_FACTOR, mode, &mut s2),
                    "{ctx}: entity candidates k={k} mode={mode:?} for {text:?}"
                );
                assert_eq!(
                    mono.type_candidates_mode(&qm, k, DEFAULT_RESCORING_FACTOR, mode, &mut s1),
                    seg.type_candidates_mode(&qs, k, DEFAULT_RESCORING_FACTOR, mode, &mut s2),
                    "{ctx}: type candidates k={k} mode={mode:?} for {text:?}"
                );
            }
        }
        for e in 0..mono.num_indexed_entities().min(8) as u32 {
            assert_eq!(
                mono.entity_profile(&qm, EntityId(e)),
                seg.entity_profile(&qs, EntityId(e)),
                "{ctx}: entity profile {e} for {text:?}"
            );
        }
        for t in 0..mono.num_indexed_types().min(6) as u32 {
            assert_eq!(
                mono.type_profile(&qm, TypeId(t)),
                seg.type_profile(&qs, TypeId(t)),
                "{ctx}: type profile {t} for {text:?}"
            );
        }
    }
}

fn assert_segmented_matches_monolithic(cat: &Catalog, queries: &[String]) {
    let mono = LemmaIndex::build(cat);
    for num_segments in [2usize, 4, 8] {
        let seg = SegmentedIndex::build_split(cat, num_segments, 1);
        assert_eq!(seg.num_indexed_entities(), cat.num_entities());
        assert_eq!(seg.num_indexed_types(), cat.num_types());
        seg.verify_catalog(cat).expect("segments cover the catalog");
        assert_probe_equivalence(&mono, &seg, queries, &format!("{num_segments} segments"));
        // Parallel fan-out must agree with sequential (and the monolith).
        let mut par = SegmentedIndex::build_split(cat, num_segments, 1);
        par.set_parallel_probe(true);
        assert_probe_equivalence(&mono, &par, queries, &format!("{num_segments} segments ∥"));
    }
}

#[test]
fn single_segment_is_bit_identical_to_monolithic() {
    for seed in [5u64, 13] {
        let w = generate_world(&WorldConfig::tiny(seed)).unwrap();
        let mono = LemmaIndex::build(&w.catalog);
        let digest = mono.content_digest();
        let seg = SegmentedIndex::from_single(Arc::new(mono));
        // The single-segment digest is the monolithic digest itself, so
        // cache fingerprints carry over from the monolithic path.
        assert_eq!(seg.content_digest(), digest, "seed={seed}");
        assert_eq!(seg.segment_count(), 1);
        let split = SegmentedIndex::build_split(&w.catalog, 1, 1);
        assert_eq!(split.segment_count(), 1);
        assert_eq!(split.content_digest(), digest, "seed={seed}: build_split(1)");
        // Layouts of the lone segment are the monolithic layouts verbatim.
        let rebuilt = LemmaIndex::build(&w.catalog);
        assert_eq!(
            format!("{:?}", split.segments()[0].layout()),
            format!("{:?}", rebuilt.layout()),
            "seed={seed}: layout"
        );
        let queries = queries_for(&w.catalog);
        assert_probe_equivalence(&rebuilt, &seg, &queries, &format!("seed {seed} single"));
    }
}

#[test]
fn multi_segment_merge_matches_monolithic_on_generated_worlds() {
    for seed in [5u64, 13] {
        let w = generate_world(&WorldConfig::tiny(seed)).unwrap();
        let queries = queries_for(&w.catalog);
        assert_segmented_matches_monolithic(&w.catalog, &queries);
    }
}

#[test]
fn append_matches_monolithic_rebuild() {
    let base_cat = build_catalog(3, 24);
    let grown_cat = build_catalog(5, 40);
    let base = SegmentedIndex::build_split(&base_cat, 2, 1);
    let base_ptrs: Vec<*const LemmaIndex> = base.segments().iter().map(Arc::as_ptr).collect();
    let grown = base.append(&grown_cat, 1).expect("append-only growth");
    // The delta is one new segment; every base segment is shared untouched.
    assert_eq!(grown.segment_count(), 3);
    for (old, new) in base_ptrs.iter().zip(grown.segments()) {
        assert_eq!(*old, Arc::as_ptr(new), "base segments must be reused, not rebuilt");
    }
    let mono = LemmaIndex::build(&grown_cat);
    let queries = queries_for(&grown_cat);
    assert_probe_equivalence(&mono, &grown, &queries, "append 2+1 segments");
    // Appending nothing keeps coverage (and stays equivalent).
    let same = grown.append(&grown_cat, 1).expect("no-op append");
    assert_eq!(same.segment_count(), 3);
    assert_probe_equivalence(&mono, &same, &queries, "no-op append");
}

#[test]
fn append_rejects_non_append_changes() {
    let base_cat = build_catalog(3, 24);
    let shrunk = build_catalog(3, 10);
    let base = SegmentedIndex::build_split(&base_cat, 2, 1);
    assert!(base.append(&shrunk, 1).is_err(), "shrunk catalog must be rejected");

    // Same counts but a reworded base lemma: must be rejected, not merged.
    let mut b = CatalogBuilder::new();
    let root = b.add_type("thing", &[]).unwrap();
    let mut types = vec![root];
    for i in 0..3 {
        let t = b.add_type(format!("kind{i} category"), &[&format!("k{i}")]).unwrap();
        b.add_subtype(t, root);
        types.push(t);
    }
    for j in 0..24 {
        let t = types[1 + j % 3];
        let name = if j == 7 {
            "reworded entity name".to_string()
        } else {
            format!("entity alpha{j} item")
        };
        let e = b.add_entity(name, &[&format!("e{j}"), "alpha shared"], &[t]).unwrap();
        if j % 3 == 0 {
            b.add_entity_lemma(e, &format!("alpha alpha {j}"));
        }
    }
    let reworded = b.finish().unwrap();
    assert!(base.append(&reworded, 1).is_err(), "reworded base lemma must be rejected");
}

#[test]
fn segment_probe_counters_move() {
    let cat = build_catalog(4, 60);
    let seg = SegmentedIndex::build_split(&cat, 4, 1);
    let mut scratch = ProbeScratch::new();
    let q = seg.doc("entity alpha3 item");
    let _ = seg.entity_candidates_with(&q, 4, DEFAULT_RESCORING_FACTOR, &mut scratch);
    let (probed, skipped) = seg.probe_stats();
    assert!(probed >= 1, "at least one segment must be probed");
    assert!(probed + skipped <= 4, "counters bounded by the fan-out width");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn segmented_merge_is_exact_on_random_catalogs(
        n_types in 0usize..5,
        n_entities in 1usize..48,
    ) {
        let cat = build_catalog(n_types, n_entities);
        let queries = queries_for(&cat);
        assert_segmented_matches_monolithic(&cat, &queries);
    }
}

//! Property tests for the similarity kernels and the lemma index.

use proptest::prelude::*;
use webtable_catalog::CatalogBuilder;
use webtable_text::{
    sim, to_sorted_set, tokenize, LemmaIndex, ProbeMode, ProbeScratch, SimEngineBuilder,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", c in "[a-z]{0,12}") {
        let ab = sim::levenshtein(&a, &b);
        let ba = sim::levenshtein(&b, &a);
        prop_assert_eq!(ab, ba, "symmetry");
        prop_assert_eq!(sim::levenshtein(&a, &a), 0, "identity");
        let ac = sim::levenshtein(&a, &c);
        let cb = sim::levenshtein(&c, &b);
        prop_assert!(ab <= ac + cb, "triangle inequality");
        // Length difference is a lower bound; max length an upper bound.
        prop_assert!(ab >= a.chars().count().abs_diff(b.chars().count()));
        prop_assert!(ab <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn jaro_winkler_bounds_and_symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let jw = sim::jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0).contains(&jw));
        prop_assert!((sim::jaro_winkler(&b, &a) - jw).abs() < 1e-12);
        let self_jw = sim::jaro_winkler(&a, &a);
        prop_assert!(self_jw >= 1.0 - 1e-12);
        // Winkler prefix boost never lowers Jaro.
        prop_assert!(jw >= sim::jaro(&a, &b) - 1e-12);
    }

    #[test]
    fn levenshtein_fast_paths_match_reference(a in "\\PC{0,16}", b in "\\PC{0,16}") {
        prop_assert_eq!(sim::levenshtein(&a, &b), reference_levenshtein(&a, &b));
    }

    #[test]
    fn jaro_fast_paths_match_reference(a in "\\PC{0,16}", b in "\\PC{0,16}") {
        prop_assert!((sim::jaro(&a, &b) - reference_jaro(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn jaro_winkler_upper_bound_is_sound(a in "\\PC{0,20}", b in "\\PC{0,20}") {
        let bound = sim::jaro_winkler_upper_bound(a.chars().count(), b.chars().count());
        prop_assert!(sim::jaro_winkler(&a, &b) <= bound + 1e-12,
            "bound {} below actual for {a:?} vs {b:?}", bound);
    }

    #[test]
    fn set_measures_bounds(xs in proptest::collection::vec(0u32..50, 0..12),
                           ys in proptest::collection::vec(0u32..50, 0..12)) {
        let a = to_sorted_set(xs);
        let b = to_sorted_set(ys);
        for m in [sim::jaccard(&a, &b), sim::dice(&a, &b), sim::overlap(&a, &b), sim::containment(&a, &b)] {
            prop_assert!((0.0..=1.0).contains(&m), "{m}");
        }
        prop_assert!(sim::jaccard(&a, &b) <= sim::dice(&a, &b) + 1e-12, "jaccard ≤ dice");
        if !a.is_empty() {
            prop_assert!((sim::jaccard(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tokenize_output_is_lowercase_alnum(s in "\\PC{0,40}") {
        for tok in tokenize(&s) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(|c| c.is_alphanumeric()));
            // Lowercasing is idempotent on tokens (some characters, e.g.
            // 𝔻, have no lowercase mapping and pass through unchanged).
            prop_assert_eq!(tok.to_lowercase(), tok.clone(), "token {} not case-normalized", tok);
            // Tokenizing a token yields the token itself.
            prop_assert_eq!(tokenize(&tok), vec![tok.clone()]);
        }
    }

    #[test]
    fn profiles_are_bounded_for_arbitrary_text(a in "\\PC{0,30}", b in "\\PC{0,30}") {
        let mut builder = SimEngineBuilder::new();
        builder.add_document(&a);
        builder.add_document(&b);
        builder.add_document("background document text");
        let engine = builder.freeze();
        let da = engine.doc(&a);
        let db = engine.doc(&b);
        let p = engine.profile(&da, &db);
        for v in p.as_array() {
            prop_assert!((0.0..=1.0).contains(&v), "{v} out of bounds for {a:?} vs {b:?}");
            prop_assert!(v.is_finite());
        }
    }

    #[test]
    fn self_similarity_is_maximal(a in "[a-zA-Z0-9 ]{1,30}") {
        prop_assume!(!tokenize(&a).is_empty());
        let mut builder = SimEngineBuilder::new();
        builder.add_document(&a);
        builder.add_document("other words entirely");
        let engine = builder.freeze();
        let d = engine.doc(&a);
        let p = engine.profile(&d, &d);
        prop_assert!((p.tfidf_cosine - 1.0).abs() < 1e-6);
        prop_assert!((p.jaccard - 1.0).abs() < 1e-12);
        prop_assert!((p.edit_sim - 1.0).abs() < 1e-12);
    }
}

/// Textbook two-row Levenshtein over `char`s — the pre-fast-path
/// implementation, kept as the oracle for the ASCII/stack-buffer kernels.
fn reference_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Heap-buffer Jaro over `char`s — the pre-fast-path implementation.
fn reference_jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::with_capacity(a.len());
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<usize> = matches_a.iter().map(|&(_, j)| j).collect();
    let t = {
        let mut sorted = b_matches.clone();
        sorted.sort_unstable();
        b_matches.iter().zip(&sorted).filter(|(x, y)| x != y).count() / 2
    };
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t as f64) / m) / 3.0
}

/// WAND admissibility: the early-terminated probe must return exactly the
/// exhaustive probe's top-k — same ids, same order, bit-identical scores.
fn assert_wand_matches_exhaustive(idx: &LemmaIndex, text: &str, ks: &[usize], factors: &[usize]) {
    let q = idx.doc(text);
    let mut s_wand = ProbeScratch::new();
    let mut s_ref = ProbeScratch::new();
    for &k in ks {
        for &factor in factors {
            let wand = idx.entity_candidates_mode(&q, k, factor, ProbeMode::Wand, &mut s_wand);
            let exhaustive =
                idx.entity_candidates_mode(&q, k, factor, ProbeMode::Exhaustive, &mut s_ref);
            assert_eq!(wand.len(), exhaustive.len(), "{text:?} k={k} factor={factor}");
            for (w, e) in wand.iter().zip(&exhaustive) {
                assert_eq!(w.id, e.id, "{text:?} k={k} factor={factor}");
                assert_eq!(
                    w.score.to_bits(),
                    e.score.to_bits(),
                    "{text:?} k={k} factor={factor}: {} vs {}",
                    w.score,
                    e.score
                );
            }
            let wand = idx.type_candidates_mode(&q, k, factor, ProbeMode::Wand, &mut s_wand);
            let exhaustive =
                idx.type_candidates_mode(&q, k, factor, ProbeMode::Exhaustive, &mut s_ref);
            assert_eq!(wand, exhaustive, "types {text:?} k={k} factor={factor}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wand_topk_matches_exhaustive_on_random_indexes(
        entity_words in proptest::collection::vec(
            proptest::collection::vec("[a-e]{1,4}", 1..4),
            1..30,
        ),
        query_words in proptest::collection::vec("[a-e]{1,4}", 0..8),
        k in 1usize..10,
    ) {
        let mut b = CatalogBuilder::new();
        let t = b.add_type("thing", &["stuff"]).unwrap();
        for (j, words) in entity_words.iter().enumerate() {
            b.add_entity(format!("{} e{j}", words.join(" ")), &[words[0].as_str()], &[t])
                .unwrap();
        }
        let idx = LemmaIndex::build(&b.finish().unwrap());
        assert_wand_matches_exhaustive(&idx, &query_words.join(" "), &[k], &[1, 6]);
    }
}

#[test]
fn wand_handles_all_upper_bounds_tied() {
    // Adversarial case: every lemma is one distinct token that occurs in
    // exactly one document, so every posting row has the same IDF and all
    // WAND upper bounds tie. Overlap scores then tie across every matched
    // lemma and ranking is decided purely by the id tie-break — the regime
    // where a sloppy (non-strict) skip test would drop qualifying lemmas.
    let mut b = CatalogBuilder::new();
    let t = b.add_type("q0", &[]).unwrap(); // one-token type name, same df
    let n = 60usize;
    for i in 0..n {
        b.add_entity(format!("w{i}"), &[], &[t]).unwrap();
    }
    let cat = b.finish().unwrap();
    let idx = LemmaIndex::build(&cat);
    // Query mentioning many distinct single-occurrence tokens: every
    // matched lemma scores exactly one identical IDF.
    let all: String = (0..n).map(|i| format!("w{i} ")).collect();
    for query in [all.as_str(), "w0 w1 w2 w3 w4 w5 w6 w7", "w59 w58 w57", "w10"] {
        assert_wand_matches_exhaustive(&idx, query, &[1, 2, 5, 16, 64], &[1, 2, 6]);
    }
}

#[test]
fn wand_survives_epoch_wraparound() {
    // The exhaustive path advances the epoch-stamped scratch; the WAND path
    // keeps separate cursor state. Force the u32 epoch to wrap between and
    // during interleaved probes of both modes: results must stay identical.
    let mut b = CatalogBuilder::new();
    let t = b.add_type("team", &[]).unwrap();
    for i in 0..20 {
        b.add_entity(format!("club {i}"), &[&format!("fc {i}")[..]], &[t]).unwrap();
    }
    let idx = LemmaIndex::build(&b.finish().unwrap());
    let q = idx.doc("club fc 7");
    let mut scratch = ProbeScratch::new();
    let baseline = idx.entity_candidates_mode(&q, 8, 6, ProbeMode::Exhaustive, &mut scratch);
    scratch.force_epoch_wrap();
    let wand = idx.entity_candidates_mode(&q, 8, 6, ProbeMode::Wand, &mut scratch);
    assert_eq!(baseline, wand, "wand probe straddling the wrap");
    let wrapped = idx.entity_candidates_mode(&q, 8, 6, ProbeMode::Exhaustive, &mut scratch);
    assert_eq!(baseline, wrapped, "exhaustive probe after the wrap");
}

#[test]
fn index_is_deterministic_and_ranked() {
    let mut b = CatalogBuilder::new();
    let t = b.add_type("thing", &[]).unwrap();
    for i in 0..50 {
        b.add_entity(format!("Entity Number {i}"), &[&format!("alias {i}")[..]], &[t]).unwrap();
    }
    let cat = b.finish().unwrap();
    let idx = webtable_text::LemmaIndex::build(&cat);
    let q = idx.doc("entity number 7");
    let r1 = idx.entity_candidates(&q, 10);
    let r2 = idx.entity_candidates(&q, 10);
    assert_eq!(r1.len(), r2.len());
    for (a, b) in r1.iter().zip(&r2) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.score, b.score);
    }
    for w in r1.windows(2) {
        assert!(w[0].score >= w[1].score, "ranking must be sorted");
    }
    assert_eq!(r1[0].id, cat.entity_named("Entity Number 7").unwrap());
}

//! Property tests for catalog closure invariants over random DAGs.

use proptest::prelude::*;
use webtable_catalog::{Cardinality, CatalogBuilder, EntityId, TypeId};

/// Strategy: a random catalog with `n_types` in a random DAG (each type may
/// attach to earlier types), `n_entities` with 1–2 random direct types, and
/// one relation with random tuples.
fn arb_catalog() -> impl Strategy<Value = webtable_catalog::Catalog> {
    (2usize..10, 1usize..20, proptest::collection::vec(any::<u32>(), 64)).prop_map(
        |(n_types, n_entities, seeds)| {
            let mut b = CatalogBuilder::new();
            b.allow_schema_violations();
            let mut k = 0usize;
            let mut next = || {
                let v = seeds[k % seeds.len()];
                k += 1;
                v as usize
            };
            let types: Vec<TypeId> =
                (0..n_types).map(|i| b.add_type(format!("type{i}"), &[]).unwrap()).collect();
            for i in 1..n_types {
                // 1-2 parents among earlier types: guarantees a DAG.
                let p1 = types[next() % i];
                b.add_subtype(types[i], p1);
                if next() % 3 == 0 {
                    let p2 = types[next() % i];
                    b.add_subtype(types[i], p2);
                }
            }
            let ents: Vec<EntityId> = (0..n_entities)
                .map(|i| {
                    let t1 = types[next() % n_types];
                    b.add_entity(format!("ent{i}"), &[], &[t1]).unwrap()
                })
                .collect();
            for &e in &ents {
                if next() % 4 == 0 {
                    b.add_instance(e, types[next() % n_types]);
                }
            }
            let r = b.add_relation("rel", types[0], types[0], Cardinality::ManyToMany).unwrap();
            for _ in 0..(next() % 8) {
                b.add_tuple(r, ents[next() % n_entities], ents[next() % n_entities]);
            }
            b.finish().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ancestors_are_transitively_closed(cat in arb_catalog()) {
        for t in cat.type_ids() {
            for &a in cat.ancestors(t) {
                for &aa in cat.ancestors(a) {
                    prop_assert!(
                        cat.is_subtype(t, aa),
                        "{t:?} ⊆* {a:?} ⊆* {aa:?} must imply {t:?} ⊆* {aa:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn instance_iff_type_in_te(cat in arb_catalog()) {
        for e in cat.entity_ids() {
            for t in cat.type_ids() {
                let via_te = cat.types_of(e).binary_search(&t).is_ok();
                prop_assert_eq!(cat.is_instance(e, t), via_te);
                // E ∈+ T ⇔ E ∈ E(T).
                let via_extent = cat.extent(t).binary_search(&e).is_ok();
                prop_assert_eq!(via_te, via_extent);
            }
        }
    }

    #[test]
    fn extents_shrink_down_the_dag(cat in arb_catalog()) {
        for t in cat.type_ids() {
            for &p in cat.parents(t) {
                prop_assert!(
                    cat.extent_size(t) <= cat.extent_size(p),
                    "extent({t:?}) ⊆ extent({p:?})"
                );
                for &e in cat.extent(t) {
                    prop_assert!(cat.is_instance(e, p));
                }
            }
        }
    }

    #[test]
    fn dist_is_consistent(cat in arb_catalog()) {
        for e in cat.entity_ids() {
            for t in cat.type_ids() {
                match cat.dist(e, t) {
                    Some(d) => {
                        prop_assert!(d >= 1, "one ∈ edge minimum");
                        prop_assert!(cat.is_instance(e, t));
                        // Moving to a parent adds at most one edge.
                        for &p in cat.parents(t) {
                            let dp = cat.dist(e, p).expect("parent reachable");
                            prop_assert!(dp <= d + 1);
                        }
                    }
                    None => prop_assert!(!cat.is_instance(e, t)),
                }
            }
        }
    }

    #[test]
    fn most_specific_returns_an_antichain(cat in arb_catalog()) {
        let all: Vec<TypeId> = cat.type_ids().collect();
        let ms = cat.most_specific(&all);
        prop_assert!(!ms.is_empty());
        for &a in &ms {
            for &b in &ms {
                if a != b {
                    prop_assert!(!cat.is_subtype(a, b), "{a:?} and {b:?} must be incomparable");
                }
            }
        }
        // Every input type is an ancestor of some retained type.
        for &t in &all {
            prop_assert!(ms.iter().any(|&m| cat.is_subtype(m, t)));
        }
    }

    #[test]
    fn specificity_is_antimonotone_in_extent(cat in arb_catalog()) {
        for t in cat.type_ids() {
            for &p in cat.parents(t) {
                prop_assert!(cat.specificity(t) >= cat.specificity(p) - 1e-12);
            }
        }
    }

    #[test]
    fn missing_link_relatedness_is_bounded(cat in arb_catalog()) {
        for e in cat.entity_ids() {
            for t in cat.type_ids() {
                let r = cat.missing_link_relatedness(e, t);
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn tsv_round_trip_preserves_structure(cat in arb_catalog()) {
        let mut buf = Vec::new();
        webtable_catalog::io::write_catalog(&cat, &mut buf).unwrap();
        let back = webtable_catalog::io::read_catalog(&buf[..]).unwrap();
        prop_assert_eq!(back.num_types(), cat.num_types());
        prop_assert_eq!(back.num_entities(), cat.num_entities());
        for e in cat.entity_ids() {
            prop_assert_eq!(back.types_of(e), cat.types_of(e));
        }
        for t in cat.type_ids() {
            prop_assert_eq!(back.extent(t), cat.extent(t));
        }
    }
}

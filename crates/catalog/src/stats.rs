//! Descriptive statistics over a catalog.
//!
//! Used by the experiment harness to report the shape of the synthetic
//! world (so runs can be compared against the YAGO numbers quoted in §6:
//! 1,941,426 entities, 248,992 types, 99 relations) and by tests to assert
//! the generator hits its configured ambiguity band.

use std::collections::HashMap;

use crate::catalog::Catalog;

/// Summary statistics of a catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogStats {
    /// `|T|`.
    pub num_types: usize,
    /// `|E|`.
    pub num_entities: usize,
    /// `|B|`.
    pub num_relations: usize,
    /// Total relation tuples across all relations.
    pub num_tuples: usize,
    /// Mean number of lemmas per entity.
    pub mean_entity_lemmas: f64,
    /// Mean number of direct types per entity.
    pub mean_direct_types: f64,
    /// Maximum depth of the type DAG.
    pub max_depth: u32,
    /// Number of distinct lemma strings shared by ≥ 2 entities — the
    /// ambiguity that makes cell disambiguation hard.
    pub ambiguous_entity_lemmas: usize,
    /// Total distinct entity lemma strings.
    pub distinct_entity_lemmas: usize,
}

impl CatalogStats {
    /// Computes statistics for a catalog.
    pub fn compute(cat: &Catalog) -> CatalogStats {
        let mut lemma_owners: HashMap<&str, usize> = HashMap::new();
        let mut total_lemmas = 0usize;
        let mut total_direct = 0usize;
        for e in cat.entity_ids() {
            let ent = cat.entity(e);
            total_lemmas += ent.lemmas.len();
            total_direct += ent.direct_types.len();
            for l in &ent.lemmas {
                *lemma_owners.entry(l.as_str()).or_insert(0) += 1;
            }
        }
        let num_tuples = cat.relation_ids().map(|b| cat.relation(b).tuples.len()).sum();
        let max_depth =
            cat.type_ids().map(|t| cat.depth(t)).filter(|&d| d < u32::MAX / 2).max().unwrap_or(0);
        let n = cat.num_entities().max(1) as f64;
        CatalogStats {
            num_types: cat.num_types(),
            num_entities: cat.num_entities(),
            num_relations: cat.num_relations(),
            num_tuples,
            mean_entity_lemmas: total_lemmas as f64 / n,
            mean_direct_types: total_direct as f64 / n,
            max_depth,
            ambiguous_entity_lemmas: lemma_owners.values().filter(|&&c| c >= 2).count(),
            distinct_entity_lemmas: lemma_owners.len(),
        }
    }

    /// Fraction of distinct entity lemmas claimed by more than one entity.
    pub fn lemma_ambiguity_rate(&self) -> f64 {
        if self.distinct_entity_lemmas == 0 {
            0.0
        } else {
            self.ambiguous_entity_lemmas as f64 / self.distinct_entity_lemmas as f64
        }
    }
}

impl std::fmt::Display for CatalogStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "types:             {}", self.num_types)?;
        writeln!(f, "entities:          {}", self.num_entities)?;
        writeln!(f, "relations:         {}", self.num_relations)?;
        writeln!(f, "tuples:            {}", self.num_tuples)?;
        writeln!(f, "lemmas/entity:     {:.2}", self.mean_entity_lemmas)?;
        writeln!(f, "direct types/ent:  {:.2}", self.mean_direct_types)?;
        writeln!(f, "max DAG depth:     {}", self.max_depth)?;
        write!(
            f,
            "ambiguous lemmas:  {} / {} ({:.1}%)",
            self.ambiguous_entity_lemmas,
            self.distinct_entity_lemmas,
            100.0 * self.lemma_ambiguity_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CatalogBuilder;
    use crate::schema::Cardinality;

    #[test]
    fn stats_count_ambiguous_lemmas() {
        let mut b = CatalogBuilder::new();
        let t = b.add_type("thing", &[]).unwrap();
        // Two entities sharing the lemma "apple".
        b.add_entity("Apple Computers", &["apple"], &[t]).unwrap();
        b.add_entity("apple (fruit)", &["apple"], &[t]).unwrap();
        b.add_entity("unique", &[], &[t]).unwrap();
        let r = b.add_relation("rel", t, t, Cardinality::ManyToMany).unwrap();
        b.add_tuple(r, crate::ids::EntityId(0), crate::ids::EntityId(1));
        let cat = b.finish().unwrap();
        let stats = CatalogStats::compute(&cat);
        assert_eq!(stats.num_entities, 3);
        assert_eq!(stats.ambiguous_entity_lemmas, 1);
        assert_eq!(stats.num_tuples, 1);
        assert!(stats.lemma_ambiguity_rate() > 0.0);
        let shown = stats.to_string();
        assert!(shown.contains("entities:"));
    }
}

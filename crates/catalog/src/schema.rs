//! Plain data records for types, entities and relations.
//!
//! These mirror the source model of §3.1: a type DAG with subtype edges, a
//! set of entities attached to types by instance (`∈`) edges, and a set of
//! named binary relations with typed schemas and tuple stores. Lemmas — the
//! strings by which a type or entity may be mentioned — live directly on the
//! records (`L(T)`, `L(E)` in the paper).

use std::collections::HashMap;

use crate::ids::{EntityId, TypeId};

/// One node of the type DAG (`T ∈ T` in the paper).
#[derive(Debug, Clone)]
pub struct TypeNode {
    /// Canonical name, unique among types (e.g. a WordNet synset or a
    /// Wikipedia category string).
    pub name: String,
    /// Lemmas describing the type, `L(T)`. The canonical name is always the
    /// first lemma.
    pub lemmas: Vec<String>,
    /// Immediate supertypes (edges `self ⊆ parent`).
    pub parents: Vec<TypeId>,
    /// Immediate subtypes (redundant with `parents`, kept for traversal).
    pub children: Vec<TypeId>,
}

/// One catalog entity (`E ∈ E` in the paper).
#[derive(Debug, Clone)]
pub struct Entity {
    /// Canonical name, unique among entities.
    pub name: String,
    /// Lemmas describing the entity, `L(E)`; e.g. New York City is also known
    /// as "New York" and "Big Apple". The canonical name is the first lemma.
    pub lemmas: Vec<String>,
    /// Direct instance (`∈`) edges to the most specific known types.
    pub direct_types: Vec<TypeId>,
}

/// Cardinality constraint of a binary relation `B(T1, T2)`.
///
/// Feature `f5` (§4.2.5) fires a violation indicator when a one-to-one or
/// functional relation would pair one entity with two different partners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cardinality {
    /// Each left entity pairs with at most one right entity and vice versa
    /// (e.g. `capital(Country, City)`).
    OneToOne,
    /// Each left entity pairs with at most one right entity
    /// (e.g. `wrote(Novel, Novelist)` when novels have a single author).
    ManyToOne,
    /// Each right entity pairs with at most one left entity.
    OneToMany,
    /// No constraint (e.g. `actedIn(Movie, Actor)`).
    ManyToMany,
}

impl Cardinality {
    /// True if the relation is functional left-to-right: a left entity may
    /// appear in at most one tuple.
    #[inline]
    pub fn functional_lr(self) -> bool {
        matches!(self, Cardinality::OneToOne | Cardinality::ManyToOne)
    }

    /// True if the relation is functional right-to-left.
    #[inline]
    pub fn functional_rl(self) -> bool {
        matches!(self, Cardinality::OneToOne | Cardinality::OneToMany)
    }

    /// Stable single-token encoding used by the TSV persistence format.
    pub fn as_token(self) -> &'static str {
        match self {
            Cardinality::OneToOne => "1:1",
            Cardinality::ManyToOne => "N:1",
            Cardinality::OneToMany => "1:N",
            Cardinality::ManyToMany => "N:N",
        }
    }

    /// Parses the encoding produced by [`Cardinality::as_token`].
    pub fn from_token(tok: &str) -> Option<Self> {
        match tok {
            "1:1" => Some(Cardinality::OneToOne),
            "N:1" => Some(Cardinality::ManyToOne),
            "1:N" => Some(Cardinality::OneToMany),
            "N:N" => Some(Cardinality::ManyToMany),
            _ => None,
        }
    }
}

/// A named binary relation `B(T1, T2)` with its extension (tuple store).
#[derive(Debug, Clone)]
pub struct Relation {
    /// Canonical relation name, unique among relations (e.g. `directed`).
    pub name: String,
    /// Schema: the type of the left column of the relation.
    pub left_type: TypeId,
    /// Schema: the type of the right column of the relation.
    pub right_type: TypeId,
    /// Declared cardinality constraint.
    pub cardinality: Cardinality,
    /// Tuples `B(E1, E2)`, deduplicated, in insertion order.
    pub tuples: Vec<(EntityId, EntityId)>,
    /// Index: left entity → right partners (sorted).
    pub by_left: HashMap<EntityId, Vec<EntityId>>,
    /// Index: right entity → left partners (sorted).
    pub by_right: HashMap<EntityId, Vec<EntityId>>,
}

impl Relation {
    /// True if the tuple `B(e1, e2)` is present in the store.
    pub fn has_tuple(&self, e1: EntityId, e2: EntityId) -> bool {
        self.by_left.get(&e1).map(|rs| rs.binary_search(&e2).is_ok()).unwrap_or(false)
    }

    /// Right partners of `e1`, or an empty slice.
    pub fn rights_of(&self, e1: EntityId) -> &[EntityId] {
        self.by_left.get(&e1).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Left partners of `e2`, or an empty slice.
    pub fn lefts_of(&self, e2: EntityId) -> &[EntityId] {
        self.by_right.get(&e2).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct left entities participating in the relation.
    pub fn distinct_left(&self) -> usize {
        self.by_left.len()
    }

    /// Number of distinct right entities participating in the relation.
    pub fn distinct_right(&self) -> usize {
        self.by_right.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_tokens_round_trip() {
        for c in [
            Cardinality::OneToOne,
            Cardinality::ManyToOne,
            Cardinality::OneToMany,
            Cardinality::ManyToMany,
        ] {
            assert_eq!(Cardinality::from_token(c.as_token()), Some(c));
        }
        assert_eq!(Cardinality::from_token("bogus"), None);
    }

    #[test]
    fn functional_flags_match_semantics() {
        assert!(Cardinality::OneToOne.functional_lr());
        assert!(Cardinality::OneToOne.functional_rl());
        assert!(Cardinality::ManyToOne.functional_lr());
        assert!(!Cardinality::ManyToOne.functional_rl());
        assert!(!Cardinality::ManyToMany.functional_lr());
    }

    #[test]
    fn relation_lookup_helpers() {
        let mut by_left = HashMap::new();
        by_left.insert(EntityId(1), vec![EntityId(2), EntityId(5)]);
        let mut by_right = HashMap::new();
        by_right.insert(EntityId(2), vec![EntityId(1)]);
        by_right.insert(EntityId(5), vec![EntityId(1)]);
        let r = Relation {
            name: "directed".into(),
            left_type: TypeId(0),
            right_type: TypeId(1),
            cardinality: Cardinality::ManyToMany,
            tuples: vec![(EntityId(1), EntityId(2)), (EntityId(1), EntityId(5))],
            by_left,
            by_right,
        };
        assert!(r.has_tuple(EntityId(1), EntityId(2)));
        assert!(!r.has_tuple(EntityId(1), EntityId(3)));
        assert!(!r.has_tuple(EntityId(9), EntityId(2)));
        assert_eq!(r.rights_of(EntityId(1)), &[EntityId(2), EntityId(5)]);
        assert_eq!(r.lefts_of(EntityId(5)), &[EntityId(1)]);
        assert_eq!(r.distinct_left(), 1);
        assert_eq!(r.distinct_right(), 2);
    }
}

//! Strongly-typed identifiers for catalog objects.
//!
//! The paper (§3.1) notes that "internally, each type has a distinct integer
//! ID"; we follow the same convention for types, entities and relations.
//! Newtypes prevent accidentally indexing an entity table with a type id.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw integer value of the id.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize`, suitable for indexing dense tables.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense table index.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a type (a node of the subtype DAG), e.g. `Physicist`.
    TypeId,
    "T"
);
define_id!(
    /// Identifier of an entity (an instance of one or more types), e.g. `Albert Einstein`.
    EntityId,
    "E"
);
define_id!(
    /// Identifier of a binary relation name, e.g. `directed(Movie, Director)`.
    RelationId,
    "B"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        let t = TypeId::from_index(42);
        assert_eq!(t.index(), 42);
        assert_eq!(t.raw(), 42);
        let e = EntityId(7);
        assert_eq!(EntityId::from_index(e.index()), e);
    }

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", TypeId(3)), "T3");
        assert_eq!(format!("{}", EntityId(9)), "E9");
        assert_eq!(format!("{:?}", RelationId(1)), "B1");
    }

    #[test]
    fn ids_are_ordered_by_raw_value() {
        assert!(TypeId(1) < TypeId(2));
        assert!(EntityId(0) < EntityId(10));
    }

    #[test]
    fn distinct_id_kinds_are_distinct_types() {
        // This is a compile-time property; the test documents the intent.
        fn takes_type(_: TypeId) {}
        takes_type(TypeId(0));
    }
}

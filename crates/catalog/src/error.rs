//! Error type for catalog construction and persistence.

use std::fmt;

/// Errors raised while building, validating, or (de)serializing a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A subtype edge would create a cycle in the type DAG.
    CyclicTypeHierarchy {
        /// Name of a type participating in the cycle.
        type_name: String,
    },
    /// A referenced type name/id does not exist.
    UnknownType(String),
    /// A referenced entity name/id does not exist.
    UnknownEntity(String),
    /// A referenced relation name/id does not exist.
    UnknownRelation(String),
    /// Two catalog objects of the same kind share a canonical name.
    DuplicateName {
        /// Which kind of object ("type", "entity", "relation").
        kind: &'static str,
        /// The offending canonical name.
        name: String,
    },
    /// A relation tuple's member is not an instance of the schema type.
    SchemaViolation {
        /// Relation name.
        relation: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A persisted catalog file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// An underlying I/O error (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::CyclicTypeHierarchy { type_name } => {
                write!(f, "type hierarchy contains a cycle through `{type_name}`")
            }
            CatalogError::UnknownType(name) => write!(f, "unknown type `{name}`"),
            CatalogError::UnknownEntity(name) => write!(f, "unknown entity `{name}`"),
            CatalogError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            CatalogError::DuplicateName { kind, name } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            CatalogError::SchemaViolation { relation, detail } => {
                write!(f, "schema violation in relation `{relation}`: {detail}")
            }
            CatalogError::Parse { line, detail } => {
                write!(f, "catalog parse error at line {line}: {detail}")
            }
            CatalogError::Io(msg) => write!(f, "catalog i/o error: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> Self {
        CatalogError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offender() {
        let e = CatalogError::UnknownType("Physicist".into());
        assert!(e.to_string().contains("Physicist"));
        let e = CatalogError::DuplicateName { kind: "entity", name: "X".into() };
        assert!(e.to_string().contains("duplicate entity"));
        let e = CatalogError::Parse { line: 12, detail: "bad field".into() };
        assert!(e.to_string().contains("line 12"));
    }
}

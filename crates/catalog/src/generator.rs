//! Synthetic world generator: the repository's stand-in for YAGO.
//!
//! The paper annotates against YAGO 2008-w40-2 (1.94M entities, 249k types,
//! 99 relations) — a resource we cannot ship. Instead we generate a world
//! whose *hardness knobs* match what makes the paper's problem hard:
//!
//! * **lemma ambiguity** — people share surnames, film adaptations share
//!   their novel's title, cities reuse surnames, countries lend their name
//!   to languages; the generator is tuned so a surname-only mention has on
//!   the order of 7–8 candidate entities, the band reported in §6.1.1;
//! * **Wikipedia-style micro-categories** — year categories ("1951 novels"),
//!   genre categories, series categories, nationality categories — which
//!   give the type DAG the depth/fan-out that breaks the LCA baseline;
//! * **catalog incompleteness** — a configurable fraction of `∈` and `⊆`
//!   edges is deleted from the *published* catalog while the *oracle*
//!   retains them, reproducing the missing-link situation of §4.2.3/App. F.
//!
//! The generator returns a [`World`]: the degraded catalog the annotator
//! sees, the complete oracle used for ground truth, and typed handles to
//! the domains so tests and experiments don't chase names around.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::CatalogBuilder;
use crate::catalog::Catalog;
use crate::error::CatalogError;
use crate::ids::{EntityId, RelationId, TypeId};
use crate::names::NamePool;
use crate::schema::Cardinality;

/// Configuration of the synthetic world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// RNG seed; every derived structure is deterministic given the seed.
    pub seed: u64,
    /// Global multiplier on all entity counts (1.0 ⇒ ~6k entities).
    pub scale: f64,
    /// Number of people at scale 1.0.
    pub n_people: usize,
    /// Number of movies at scale 1.0.
    pub n_movies: usize,
    /// Number of novels at scale 1.0.
    pub n_novels: usize,
    /// Number of football clubs at scale 1.0.
    pub n_clubs: usize,
    /// Number of countries at scale 1.0.
    pub n_countries: usize,
    /// Number of cities at scale 1.0.
    pub n_cities: usize,
    /// Number of languages at scale 1.0.
    pub n_languages: usize,
    /// Size of the surname pool; smaller ⇒ more ambiguity.
    pub surname_pool: usize,
    /// Size of the first-name pool.
    pub first_name_pool: usize,
    /// Fraction of movies that are adaptations sharing a novel's title.
    pub adaptation_rate: f64,
    /// Probability that an `∈` edge is dropped from the published catalog
    /// (only when the entity keeps at least one other direct type).
    pub missing_instance_rate: f64,
    /// Probability that a `⊆` edge from a micro-category is dropped from
    /// the published catalog.
    pub missing_subtype_rate: f64,
    /// Fraction of relation tuples missing from the published catalog.
    /// The paper's premise is that the catalog holds only a small seed
    /// fraction of the facts expressed in Web tables ("The seed tuples we
    /// start with in our catalog are only a small fraction of all the
    /// tuples we find", §1.2).
    pub missing_tuple_rate: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 42,
            scale: 1.0,
            n_people: 2600,
            n_movies: 1100,
            n_novels: 700,
            n_clubs: 160,
            n_countries: 60,
            n_cities: 260,
            n_languages: 50,
            surname_pool: 260,
            first_name_pool: 130,
            adaptation_rate: 0.25,
            missing_instance_rate: 0.12,
            missing_subtype_rate: 0.03,
            missing_tuple_rate: 0.5,
        }
    }
}

impl WorldConfig {
    /// A small world for fast unit tests (~600 entities).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig { seed, scale: 0.1, ..WorldConfig::default() }
    }

    fn scaled(&self, n: usize) -> usize {
        ((n as f64 * self.scale).round() as usize).max(2)
    }
}

/// Typed handles to the world's types.
#[derive(Debug, Clone)]
pub struct DomainTypes {
    /// `person`.
    pub person: TypeId,
    /// `actor ⊆ person`.
    pub actor: TypeId,
    /// `director ⊆ person`.
    pub director: TypeId,
    /// `producer ⊆ person`.
    pub producer: TypeId,
    /// `novelist ⊆ writer ⊆ person`.
    pub novelist: TypeId,
    /// `footballer ⊆ person`.
    pub footballer: TypeId,
    /// `politician ⊆ person`.
    pub politician: TypeId,
    /// `creative work`.
    pub creative_work: TypeId,
    /// `movie ⊆ creative work`.
    pub movie: TypeId,
    /// `book ⊆ creative work`.
    pub book: TypeId,
    /// `novel ⊆ book`.
    pub novel: TypeId,
    /// `organization`.
    pub organization: TypeId,
    /// `football club ⊆ organization`.
    pub club: TypeId,
    /// `place`.
    pub place: TypeId,
    /// `country ⊆ place`.
    pub country: TypeId,
    /// `city ⊆ place`.
    pub city: TypeId,
    /// `language`.
    pub language: TypeId,
}

/// Typed handles to the world's relations. The first five are the
/// relations of the paper's search experiments (Fig. 13).
#[derive(Debug, Clone)]
pub struct DomainRelations {
    /// `actedIn(movie, actor)`, many-to-many.
    pub acted_in: RelationId,
    /// `directed(movie, director)`, many-to-one.
    pub directed: RelationId,
    /// `wrote(novel, novelist)`, many-to-one.
    pub wrote: RelationId,
    /// `officialLanguage(country, language)`, many-to-many.
    pub official_language: RelationId,
    /// `produced(movie, producer)`, many-to-many.
    pub produced: RelationId,
    /// `playsFor(footballer, club)`, many-to-one.
    pub plays_for: RelationId,
    /// `bornIn(person, city)`, many-to-one.
    pub born_in: RelationId,
    /// `capital(country, city)`, one-to-one.
    pub capital: RelationId,
    /// `adaptedFrom(movie, novel)`, many-to-one.
    pub adapted_from: RelationId,
    /// `leaderOf(politician, country)`, one-to-one.
    pub leader_of: RelationId,
    /// `narratedBy(movie, actor)` — schema twin of `actedIn`.
    pub narrated_by: RelationId,
    /// `wroteScreenplay(movie, director)` — schema twin of `directed`.
    pub wrote_screenplay: RelationId,
    /// `translated(novel, novelist)` — schema twin of `wrote`.
    pub translated: RelationId,
    /// `minorityLanguage(country, language)` — schema twin of
    /// `officialLanguage`.
    pub minority_language: RelationId,
    /// `distributedBy(movie, producer)` — schema twin of `produced`.
    pub distributed_by: RelationId,
}

impl DomainRelations {
    /// The five relations used in the paper's search evaluation (Fig. 13),
    /// in the order of Figure 9's x-axis.
    pub fn figure13(&self) -> [RelationId; 5] {
        [self.acted_in, self.directed, self.official_language, self.produced, self.wrote]
    }
}

/// Entity rosters per domain (ids valid in both catalog and oracle).
#[derive(Debug, Clone, Default)]
pub struct DomainEntities {
    /// All people.
    pub people: Vec<EntityId>,
    /// People who act.
    pub actors: Vec<EntityId>,
    /// People who direct.
    pub directors: Vec<EntityId>,
    /// People who produce.
    pub producers: Vec<EntityId>,
    /// People who write novels.
    pub novelists: Vec<EntityId>,
    /// People who play football.
    pub footballers: Vec<EntityId>,
    /// People in politics.
    pub politicians: Vec<EntityId>,
    /// All movies.
    pub movies: Vec<EntityId>,
    /// All novels.
    pub novels: Vec<EntityId>,
    /// All clubs.
    pub clubs: Vec<EntityId>,
    /// All countries.
    pub countries: Vec<EntityId>,
    /// All cities.
    pub cities: Vec<EntityId>,
    /// All languages.
    pub languages: Vec<EntityId>,
}

/// A generated world: published (possibly incomplete) catalog, complete
/// oracle, and typed handles.
#[derive(Debug, Clone)]
pub struct World {
    /// The catalog the annotator sees (may have planted missing links).
    pub catalog: Arc<Catalog>,
    /// The complete catalog used for ground truth and search relevance.
    pub oracle: Arc<Catalog>,
    /// Type handles.
    pub types: DomainTypes,
    /// Relation handles.
    pub relations: DomainRelations,
    /// Entity rosters.
    pub entities: DomainEntities,
    /// The config that produced this world.
    pub config: WorldConfig,
}

/// Generates a world from a configuration. Deterministic in `config.seed`.
pub fn generate_world(config: &WorldConfig) -> Result<World, CatalogError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let plan = WorldPlan::generate(config, &mut rng);
    let oracle = plan.materialize(config, /*degrade=*/ false)?;
    let catalog = plan.materialize(config, /*degrade=*/ true)?;
    let (types, relations) = plan.handles();
    Ok(World {
        catalog: Arc::new(catalog),
        oracle: Arc::new(oracle),
        types,
        relations,
        entities: plan.rosters,
        config: config.clone(),
    })
}

// ----------------------------------------------------------------------
// Internal plan: everything decided once, then materialized twice
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
struct TypePlan {
    name: String,
    lemmas: Vec<String>,
    parents: Vec<usize>,
    /// Micro-categories are eligible for ⊆-edge deletion.
    micro: bool,
}

#[derive(Debug, Clone)]
struct EntityPlan {
    name: String,
    lemmas: Vec<String>,
    direct_types: Vec<usize>,
    /// Parallel to `direct_types`: whether the ∈ edge may be dropped.
    droppable: Vec<bool>,
}

#[derive(Debug, Clone)]
struct RelationPlan {
    name: String,
    left: usize,
    right: usize,
    card: Cardinality,
    tuples: Vec<(usize, usize)>,
}

#[derive(Debug)]
struct WorldPlan {
    types: Vec<TypePlan>,
    entities: Vec<EntityPlan>,
    relations: Vec<RelationPlan>,
    rosters: DomainEntities,
    handles_types: Vec<usize>, // indexes into `types` for DomainTypes fields
    handles_relations: Vec<usize>, // indexes into `relations` for DomainRelations
    /// Deterministic drop decisions: (entity idx, slot idx) to drop.
    instance_drops: Vec<(usize, usize)>,
    /// (type idx, parent slot idx) to drop.
    subtype_drops: Vec<(usize, usize)>,
    /// (relation idx, tuple idx) to drop from the published catalog.
    tuple_drops: Vec<(usize, usize)>,
}

impl WorldPlan {
    fn generate(cfg: &WorldConfig, rng: &mut StdRng) -> WorldPlan {
        let mut plan = WorldPlan {
            types: Vec::new(),
            entities: Vec::new(),
            relations: Vec::new(),
            rosters: DomainEntities::default(),
            handles_types: Vec::new(),
            handles_relations: Vec::new(),
            instance_drops: Vec::new(),
            subtype_drops: Vec::new(),
            tuple_drops: Vec::new(),
        };
        let surnames = NamePool::generate(rng, cfg.surname_pool, 1, 2);
        let firsts = NamePool::generate(rng, cfg.first_name_pool, 1, 2);
        let nouns = NamePool::generate(rng, 240, 1, 2);
        let adjectives = NamePool::generate(rng, 120, 1, 2);
        let placebits = NamePool::generate(rng, 200, 1, 2);

        // ---------------- types ----------------
        let add_type =
            |p: &mut WorldPlan, name: &str, lemmas: &[String], parents: &[usize], micro: bool| {
                p.types.push(TypePlan {
                    name: name.to_string(),
                    lemmas: lemmas.to_vec(),
                    parents: parents.to_vec(),
                    micro,
                });
                p.types.len() - 1
            };
        let s = |x: &str| x.to_string();
        let root = add_type(&mut plan, "entity", &[s("entity"), s("thing")], &[], false);
        let person =
            add_type(&mut plan, "person", &[s("person"), s("people"), s("name")], &[root], false);
        let artist = add_type(&mut plan, "artist", &[s("artist")], &[person], false);
        let actor =
            add_type(&mut plan, "actor", &[s("actor"), s("actress"), s("cast")], &[artist], false);
        let director = add_type(
            &mut plan,
            "film director",
            &[s("film director"), s("director"), s("directed by")],
            &[artist],
            false,
        );
        let producer = add_type(
            &mut plan,
            "film producer",
            &[s("film producer"), s("producer"), s("produced by")],
            &[artist],
            false,
        );
        let writer = add_type(&mut plan, "writer", &[s("writer"), s("author")], &[artist], false);
        let novelist =
            add_type(&mut plan, "novelist", &[s("novelist"), s("author")], &[writer], false);
        let sportsperson = add_type(
            &mut plan,
            "sportsperson",
            &[s("sportsperson"), s("player")],
            &[person],
            false,
        );
        let footballer = add_type(
            &mut plan,
            "footballer",
            &[s("footballer"), s("soccer player"), s("player")],
            &[sportsperson],
            false,
        );
        let politician =
            add_type(&mut plan, "politician", &[s("politician"), s("leader")], &[person], false);
        let work = add_type(
            &mut plan,
            "creative work",
            &[s("creative work"), s("work"), s("title")],
            &[root],
            false,
        );
        let movie =
            add_type(&mut plan, "movie", &[s("movie"), s("film"), s("title")], &[work], false);
        let book = add_type(&mut plan, "book", &[s("book"), s("title")], &[work], false);
        let novel =
            add_type(&mut plan, "novel", &[s("novel"), s("title"), s("book")], &[book], false);
        let organization =
            add_type(&mut plan, "organization", &[s("organization")], &[root], false);
        let club = add_type(
            &mut plan,
            "football club",
            &[s("football club"), s("club"), s("team")],
            &[organization],
            false,
        );
        let place = add_type(&mut plan, "place", &[s("place"), s("location")], &[root], false);
        let country = add_type(
            &mut plan,
            "country",
            &[s("country"), s("nation"), s("state")],
            &[place],
            false,
        );
        let city =
            add_type(&mut plan, "city", &[s("city"), s("town"), s("birthplace")], &[place], false);
        let language = add_type(
            &mut plan,
            "language",
            &[s("language"), s("tongue"), s("official language")],
            &[root],
            false,
        );

        plan.handles_types = vec![
            person,
            actor,
            director,
            producer,
            novelist,
            footballer,
            politician,
            work,
            movie,
            book,
            novel,
            organization,
            club,
            place,
            country,
            city,
            language,
        ];

        // Micro-categories (Wikipedia-style): genres, years, series,
        // nationalities. These are what make LCA over-generalize.
        let movie_genres: Vec<usize> = ["drama", "comedy", "thriller", "adventure", "romance"]
            .iter()
            .map(|g| {
                add_type(
                    &mut plan,
                    &format!("{g} films"),
                    &[format!("{g} films"), format!("{g} movies"), s(g)],
                    &[movie],
                    true,
                )
            })
            .collect();
        let movie_years: Vec<(u32, usize)> = (1970..2010)
            .step_by(2)
            .map(|y| {
                (
                    y,
                    add_type(
                        &mut plan,
                        &format!("films of {y}"),
                        &[format!("films of {y}"), format!("{y} films")],
                        &[movie],
                        true,
                    ),
                )
            })
            .collect();
        let novel_years: Vec<(u32, usize)> = (1930..2010)
            .step_by(4)
            .map(|y| {
                (
                    y,
                    add_type(
                        &mut plan,
                        &format!("{y} novels"),
                        &[format!("{y} novels"), format!("novels of {y}")],
                        &[novel],
                        true,
                    ),
                )
            })
            .collect();
        let childrens =
            add_type(&mut plan, "children's novels", &[s("children's novels")], &[novel], true);

        // ---------------- countries / languages / cities ----------------
        let n_countries = cfg.scaled(cfg.n_countries);
        let n_languages = cfg.scaled(cfg.n_languages).min(n_countries + 10);
        let n_cities = cfg.scaled(cfg.n_cities);

        let mut country_names = Vec::with_capacity(n_countries);
        for i in 0..n_countries {
            country_names.push(format!(
                "{}{}",
                placebits.word(i * 3),
                ["ia", "land", "stan", "ovia"][i % 4]
            ));
        }
        let country_start = plan.entities.len();
        for name in &country_names {
            plan.entities.push(EntityPlan {
                name: name.clone(),
                lemmas: vec![name.clone(), format!("Republic of {name}")],
                direct_types: vec![country],
                droppable: vec![false],
            });
        }
        // Nationality categories ("people of X") for a subset of countries.
        let mut nationality_types = Vec::new();
        for name in country_names.iter().take(n_countries / 2) {
            nationality_types.push(add_type(
                &mut plan,
                &format!("people of {name}"),
                &[format!("people of {name}"), format!("{name} people")],
                &[person],
                true,
            ));
        }

        // Languages: derive most from country names (name ambiguity!), the
        // rest standalone.
        let language_start = plan.entities.len();
        #[allow(clippy::needless_range_loop)] // index drives several pools
        for i in 0..n_languages {
            let (name, lemmas) = if i < n_countries && i % 2 == 0 {
                // "Norlandia" → language "Norlandian"; lemma also contains
                // the country token, creating cross-type ambiguity.
                let base = &country_names[i];
                (format!("{base}n"), vec![format!("{base}n"), base.clone()])
            } else {
                let w = nouns.word(i * 7);
                (format!("{w}ish"), vec![format!("{w}ish")])
            };
            plan.entities.push(EntityPlan {
                name,
                lemmas,
                direct_types: vec![language],
                droppable: vec![false],
            });
        }

        let city_start = plan.entities.len();
        for i in 0..n_cities {
            // A slice of cities reuse surnames (person/place ambiguity), and
            // a few reuse country names ("New York, New York"-style traps).
            let name = if i % 5 == 0 {
                surnames.word(i / 5 * 11).to_string()
            } else if i % 17 == 3 {
                format!("{} City", country_names[i % n_countries])
            } else {
                format!(
                    "{}{}",
                    placebits.word(i * 2 + 1),
                    ["ton", "ville", "burg", "port", "ford"][i % 5]
                )
            };
            let mut lemmas = vec![name.clone()];
            if i % 9 == 0 {
                lemmas.push(format!("Old {name}"));
            }
            let mut name = name;
            // Canonical names must be unique; qualify duplicates.
            if plan.entities.iter().any(|e| e.name == name) || country_names.contains(&name) {
                name = format!("{name} (city)");
            }
            let mut ordinal = 1;
            while plan.entities.iter().any(|e| e.name == name) {
                ordinal += 1;
                name = format!("{} (city {ordinal})", lemmas[0]);
            }
            plan.entities.push(EntityPlan {
                name,
                lemmas,
                direct_types: vec![city],
                droppable: vec![false],
            });
        }

        // ---------------- people ----------------
        let n_people = cfg.scaled(cfg.n_people);
        let people_start = plan.entities.len();
        let mut used_person_names = std::collections::HashSet::new();
        for i in 0..n_people {
            let first = firsts.pick(rng).to_string();
            let last = surnames.pick(rng).to_string();
            let mut canonical = format!("{first} {last}");
            let mut suffix = 1;
            while !used_person_names.insert(canonical.clone()) {
                suffix += 1;
                canonical = format!("{first} {last} {}", roman(suffix));
            }
            let initial = first.chars().next().unwrap();
            let lemmas = vec![
                canonical.clone(),
                format!("{first} {last}"),
                format!("{initial}. {last}"),
                last.clone(),
            ];
            // Profession(s): weighted, 1–2 each; plus a nationality category.
            let mut direct = Vec::new();
            let mut droppable = Vec::new();
            let professions = [actor, director, producer, novelist, footballer, politician];
            let weights = [30u32, 12, 10, 18, 20, 10];
            let total: u32 = weights.iter().sum();
            let pick_profession = |rng: &mut StdRng| {
                let mut x = rng.gen_range(0..total);
                for (p, w) in professions.iter().zip(weights) {
                    if x < w {
                        return *p;
                    }
                    x -= w;
                }
                actor
            };
            let p1 = pick_profession(rng);
            direct.push(p1);
            droppable.push(true);
            if rng.gen_bool(0.15) {
                let p2 = pick_profession(rng);
                if p2 != p1 {
                    direct.push(p2);
                    droppable.push(true);
                }
            }
            if !nationality_types.is_empty() && rng.gen_bool(0.8) {
                direct.push(nationality_types[rng.gen_range(0..nationality_types.len())]);
                droppable.push(true);
            }
            let _ = i;
            plan.entities.push(EntityPlan {
                name: canonical,
                lemmas,
                direct_types: direct,
                droppable,
            });
        }

        // Collect profession rosters (plan indexes; converted to ids below).
        for (off, e) in plan.entities[people_start..].iter().enumerate() {
            let id = EntityId::from_index(people_start + off);
            plan.rosters.people.push(id);
            for &t in &e.direct_types {
                if t == actor {
                    plan.rosters.actors.push(id);
                } else if t == director {
                    plan.rosters.directors.push(id);
                } else if t == producer {
                    plan.rosters.producers.push(id);
                } else if t == novelist {
                    plan.rosters.novelists.push(id);
                } else if t == footballer {
                    plan.rosters.footballers.push(id);
                } else if t == politician {
                    plan.rosters.politicians.push(id);
                }
            }
        }

        // ---------------- novels ----------------
        let n_novels = cfg.scaled(cfg.n_novels);
        let novels_start = plan.entities.len();
        let mut novel_titles = Vec::with_capacity(n_novels);
        let mut used_titles = std::collections::HashSet::new();
        // Series categories ("<Name> series books") covering runs of novels.
        let n_series = (n_novels / 12).max(1);
        let series_types: Vec<usize> = (0..n_series)
            .map(|i| {
                let hero = format!("{} {}", firsts.word(i * 5), surnames.word(i * 13));
                add_type(
                    &mut plan,
                    &format!("{hero} series books"),
                    &[format!("{hero} series books"), format!("{hero} series")],
                    &[novel],
                    true,
                )
            })
            .collect();
        for i in 0..n_novels {
            let title = loop {
                let t = match rng.gen_range(0..4) {
                    0 => format!("The {} of {}", nouns.pick(rng), nouns.pick(rng)),
                    1 => format!("{} {}", adjectives.pick(rng), nouns.pick(rng)),
                    2 => format!("The {} {}", adjectives.pick(rng), nouns.pick(rng)),
                    _ => format!("A {} for {}", nouns.pick(rng), nouns.pick(rng)),
                };
                if used_titles.insert(t.clone()) {
                    break t;
                }
            };
            novel_titles.push(title.clone());
            let year_t = novel_years[rng.gen_range(0..novel_years.len())].1;
            let mut direct = vec![year_t];
            let mut droppable = vec![true];
            let series = series_types[i % series_types.len()];
            if rng.gen_bool(0.5) {
                direct.push(series);
                droppable.push(true);
            }
            if rng.gen_bool(0.2) {
                direct.push(childrens);
                droppable.push(true);
            }
            // Always keep one non-droppable anchor so entities never become
            // typeless in the degraded catalog: novels stay `novel`s.
            direct.push(novel);
            droppable.push(false);
            plan.entities.push(EntityPlan {
                name: format!("{title} (novel)"),
                lemmas: vec![title.clone(), format!("{title} (novel)")],
                direct_types: direct,
                droppable,
            });
            plan.rosters.novels.push(EntityId::from_index(novels_start + i));
        }

        // ---------------- movies ----------------
        let n_movies = cfg.scaled(cfg.n_movies);
        let movies_start = plan.entities.len();
        let mut adaptations: Vec<(usize, usize)> = Vec::new(); // (movie idx, novel idx)
        for i in 0..n_movies {
            let adapted = !novel_titles.is_empty() && rng.gen_bool(cfg.adaptation_rate);
            let title = if adapted {
                let ni = rng.gen_range(0..novel_titles.len());
                adaptations.push((movies_start + i, novels_start + ni));
                novel_titles[ni].clone()
            } else {
                loop {
                    let t = match rng.gen_range(0..4) {
                        0 => format!("The {} {}", adjectives.pick(rng), nouns.pick(rng)),
                        1 => format!("{} of {}", nouns.pick(rng), placebits.pick(rng)),
                        2 => format!("{} {}", adjectives.pick(rng), nouns.pick(rng)),
                        _ => format!("The Last {}", nouns.pick(rng)),
                    };
                    if used_titles.insert(t.clone()) {
                        break t;
                    }
                }
            };
            let (year, year_t) = movie_years[rng.gen_range(0..movie_years.len())];
            let genre_t = movie_genres[rng.gen_range(0..movie_genres.len())];
            let mut lemmas = vec![title.clone(), format!("{title} ({year} film)")];
            if let Some(stripped) = title.strip_prefix("The ") {
                lemmas.push(stripped.to_string());
            }
            // Two adaptations of the same novel would collide on canonical
            // name; qualify with the year (and an ordinal as a last resort).
            let mut canonical = format!("{title} (film)");
            if plan.entities.iter().any(|e| e.name == canonical) {
                canonical = format!("{title} ({year} film)");
            }
            if plan.entities.iter().any(|e| e.name == canonical) {
                canonical = format!("{title} ({year} film) [{i}]");
            }
            plan.entities.push(EntityPlan {
                name: canonical,
                lemmas,
                direct_types: vec![year_t, genre_t, movie],
                droppable: vec![true, true, false],
            });
            plan.rosters.movies.push(EntityId::from_index(movies_start + i));
        }

        // ---------------- clubs ----------------
        let n_clubs = cfg.scaled(cfg.n_clubs);
        let clubs_start = plan.entities.len();
        for i in 0..n_clubs {
            let city_idx = city_start + (i * 7) % n_cities;
            let city_name = plan.entities[city_idx].lemmas[0].clone();
            let suffix = ["United", "FC", "Rovers", "Athletic", "City"][i % 5];
            let mut name = format!("{city_name} {suffix}");
            if plan.entities.iter().any(|e| e.name == name) {
                name = format!("{name} ({})", i);
            }
            let lemmas = vec![name.clone(), city_name];
            plan.entities.push(EntityPlan {
                name,
                lemmas,
                direct_types: vec![club],
                droppable: vec![false],
            });
            plan.rosters.clubs.push(EntityId::from_index(clubs_start + i));
        }

        for i in 0..n_countries {
            plan.rosters.countries.push(EntityId::from_index(country_start + i));
        }
        for i in 0..n_languages {
            plan.rosters.languages.push(EntityId::from_index(language_start + i));
        }
        for i in 0..n_cities {
            plan.rosters.cities.push(EntityId::from_index(city_start + i));
        }

        // ---------------- relations ----------------
        let idx = |e: EntityId| e.index();
        let pick = |v: &[EntityId], rng: &mut StdRng| v[rng.gen_range(0..v.len())];

        let mut acted_in = RelationPlan {
            name: "actedIn".into(),
            left: movie,
            right: actor,
            card: Cardinality::ManyToMany,
            tuples: Vec::new(),
        };
        let mut directed = RelationPlan {
            name: "directed".into(),
            left: movie,
            right: director,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        let mut produced = RelationPlan {
            name: "produced".into(),
            left: movie,
            right: producer,
            card: Cardinality::ManyToMany,
            tuples: Vec::new(),
        };
        for &m in &plan.rosters.movies {
            if !plan.rosters.actors.is_empty() {
                let k = rng.gen_range(2..=4);
                for _ in 0..k {
                    acted_in.tuples.push((idx(m), idx(pick(&plan.rosters.actors, rng))));
                }
            }
            if !plan.rosters.directors.is_empty() {
                directed.tuples.push((idx(m), idx(pick(&plan.rosters.directors, rng))));
            }
            if !plan.rosters.producers.is_empty() {
                let k = rng.gen_range(1..=2);
                for _ in 0..k {
                    produced.tuples.push((idx(m), idx(pick(&plan.rosters.producers, rng))));
                }
            }
        }
        let mut wrote = RelationPlan {
            name: "wrote".into(),
            left: novel,
            right: novelist,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        for &n in &plan.rosters.novels {
            if !plan.rosters.novelists.is_empty() {
                wrote.tuples.push((idx(n), idx(pick(&plan.rosters.novelists, rng))));
            }
        }
        let mut official_language = RelationPlan {
            name: "officialLanguage".into(),
            left: country,
            right: language,
            card: Cardinality::ManyToMany,
            tuples: Vec::new(),
        };
        for (ci, &c) in plan.rosters.countries.iter().enumerate() {
            // Own language when it exists, plus 0–2 others.
            if ci < plan.rosters.languages.len() && ci % 2 == 0 {
                official_language.tuples.push((idx(c), idx(plan.rosters.languages[ci])));
            }
            for _ in 0..rng.gen_range(0..=2u32) {
                official_language.tuples.push((idx(c), idx(pick(&plan.rosters.languages, rng))));
            }
        }
        let mut plays_for = RelationPlan {
            name: "playsFor".into(),
            left: footballer,
            right: club,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        for &p in &plan.rosters.footballers {
            if !plan.rosters.clubs.is_empty() {
                plays_for.tuples.push((idx(p), idx(pick(&plan.rosters.clubs, rng))));
            }
        }
        let mut born_in = RelationPlan {
            name: "bornIn".into(),
            left: person,
            right: city,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        for &p in &plan.rosters.people {
            if rng.gen_bool(0.7) && !plan.rosters.cities.is_empty() {
                born_in.tuples.push((idx(p), idx(pick(&plan.rosters.cities, rng))));
            }
        }
        let mut capital = RelationPlan {
            name: "capital".into(),
            left: country,
            right: city,
            card: Cardinality::OneToOne,
            tuples: Vec::new(),
        };
        let mut used_cities = std::collections::HashSet::new();
        for (i, &c) in plan.rosters.countries.iter().enumerate() {
            let city_e = plan.rosters.cities[(i * 13) % plan.rosters.cities.len()];
            if used_cities.insert(city_e) {
                capital.tuples.push((idx(c), idx(city_e)));
            }
        }
        let mut adapted_from = RelationPlan {
            name: "adaptedFrom".into(),
            left: movie,
            right: novel,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        for &(m, n) in &adaptations {
            adapted_from.tuples.push((m, n));
        }
        let mut leader_of = RelationPlan {
            name: "leaderOf".into(),
            left: politician,
            right: country,
            card: Cardinality::OneToOne,
            tuples: Vec::new(),
        };
        let mut used_pol = std::collections::HashSet::new();
        for (i, &c) in plan.rosters.countries.iter().enumerate() {
            if plan.rosters.politicians.is_empty() {
                break;
            }
            let p = plan.rosters.politicians[(i * 7) % plan.rosters.politicians.len()];
            if used_pol.insert(p) {
                leader_of.tuples.push((idx(p), idx(c)));
            }
        }

        // Schema twins: relations sharing their column types with one of
        // the Figure 13 relations. YAGO is full of these (actedIn vs
        // directed vs produced all pair movies with people); they are what
        // makes relation disambiguation — and the Type-vs-Type+Rel gap of
        // Figure 9 — non-trivial.
        let mut narrated_by = RelationPlan {
            name: "narratedBy".into(),
            left: movie,
            right: actor,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        let mut wrote_screenplay = RelationPlan {
            name: "wroteScreenplay".into(),
            left: movie,
            right: director,
            card: Cardinality::ManyToMany,
            tuples: Vec::new(),
        };
        let mut distributed_by = RelationPlan {
            name: "distributedBy".into(),
            left: movie,
            right: producer,
            card: Cardinality::ManyToOne,
            tuples: Vec::new(),
        };
        for &m in &plan.rosters.movies {
            if !plan.rosters.actors.is_empty() && rng.gen_bool(0.2) {
                narrated_by.tuples.push((idx(m), idx(pick(&plan.rosters.actors, rng))));
            }
            if !plan.rosters.directors.is_empty() && rng.gen_bool(0.35) {
                wrote_screenplay.tuples.push((idx(m), idx(pick(&plan.rosters.directors, rng))));
            }
            if !plan.rosters.producers.is_empty() && rng.gen_bool(0.5) {
                distributed_by.tuples.push((idx(m), idx(pick(&plan.rosters.producers, rng))));
            }
        }
        let mut translated = RelationPlan {
            name: "translated".into(),
            left: novel,
            right: novelist,
            card: Cardinality::ManyToMany,
            tuples: Vec::new(),
        };
        for &n in &plan.rosters.novels {
            if !plan.rosters.novelists.is_empty() && rng.gen_bool(0.3) {
                translated.tuples.push((idx(n), idx(pick(&plan.rosters.novelists, rng))));
            }
        }
        let mut minority_language = RelationPlan {
            name: "minorityLanguage".into(),
            left: country,
            right: language,
            card: Cardinality::ManyToMany,
            tuples: Vec::new(),
        };
        for &c in &plan.rosters.countries {
            for _ in 0..rng.gen_range(0..=2u32) {
                minority_language.tuples.push((idx(c), idx(pick(&plan.rosters.languages, rng))));
            }
        }

        plan.relations = vec![
            acted_in,
            directed,
            wrote,
            official_language,
            produced,
            plays_for,
            born_in,
            capital,
            adapted_from,
            leader_of,
            narrated_by,
            wrote_screenplay,
            translated,
            minority_language,
            distributed_by,
        ];
        plan.handles_relations = (0..plan.relations.len()).collect();

        // ---------------- incompleteness decisions ----------------
        for (ei, e) in plan.entities.iter().enumerate() {
            let droppable_slots: Vec<usize> =
                (0..e.direct_types.len()).filter(|&s| e.droppable[s]).collect();
            for &slot in &droppable_slots {
                // Never orphan an entity entirely.
                let remaining = e.direct_types.len()
                    - plan.instance_drops.iter().filter(|&&(x, _)| x == ei).count();
                if remaining <= 1 {
                    break;
                }
                if rng.gen_bool(cfg.missing_instance_rate) {
                    plan.instance_drops.push((ei, slot));
                }
            }
        }
        for (ti, t) in plan.types.iter().enumerate() {
            if t.micro {
                for slot in 0..t.parents.len() {
                    if rng.gen_bool(cfg.missing_subtype_rate) {
                        plan.subtype_drops.push((ti, slot));
                    }
                }
            }
        }
        for (ri, r) in plan.relations.iter().enumerate() {
            for tup in 0..r.tuples.len() {
                if rng.gen_bool(cfg.missing_tuple_rate) {
                    plan.tuple_drops.push((ri, tup));
                }
            }
        }

        plan
    }

    fn materialize(&self, _cfg: &WorldConfig, degrade: bool) -> Result<Catalog, CatalogError> {
        let mut b = CatalogBuilder::new();
        if degrade {
            b.allow_schema_violations();
        }
        let instance_drops: std::collections::HashSet<(usize, usize)> =
            self.instance_drops.iter().copied().collect();
        let subtype_drops: std::collections::HashSet<(usize, usize)> =
            self.subtype_drops.iter().copied().collect();
        let tuple_drops: std::collections::HashSet<(usize, usize)> =
            self.tuple_drops.iter().copied().collect();
        let mut type_ids = Vec::with_capacity(self.types.len());
        for t in &self.types {
            let extra: Vec<&str> =
                t.lemmas.iter().skip_while(|l| **l == t.name).map(|s| s.as_str()).collect();
            let id = b.add_type(t.name.clone(), &[])?;
            for l in &extra {
                b.add_type_lemma(id, l);
            }
            type_ids.push(id);
        }
        for (ti, t) in self.types.iter().enumerate() {
            let mut kept = 0usize;
            for (slot, &p) in t.parents.iter().enumerate() {
                if degrade && subtype_drops.contains(&(ti, slot)) {
                    continue;
                }
                kept += 1;
                b.add_subtype(type_ids[ti], type_ids[p]);
            }
            // A category whose only ⊆ edge went missing still sits somewhere
            // in a real catalog — directly under the root. (This keeps type
            // ids aligned between oracle and degraded catalog, and is the
            // over-generalization trap of App. F.)
            if !t.parents.is_empty() && kept == 0 {
                b.add_subtype(type_ids[ti], type_ids[0]);
            }
        }
        for (ei, e) in self.entities.iter().enumerate() {
            let id = b.add_entity(e.name.clone(), &[], &[])?;
            debug_assert_eq!(id.index(), ei);
            for l in &e.lemmas {
                b.add_entity_lemma(id, l);
            }
            for (slot, &t) in e.direct_types.iter().enumerate() {
                if degrade && instance_drops.contains(&(ei, slot)) {
                    continue;
                }
                b.add_instance(id, type_ids[t]);
            }
        }
        for (ri, r) in self.relations.iter().enumerate() {
            let rid =
                b.add_relation(r.name.clone(), type_ids[r.left], type_ids[r.right], r.card)?;
            for (tup, &(e1, e2)) in r.tuples.iter().enumerate() {
                if degrade && tuple_drops.contains(&(ri, tup)) {
                    continue;
                }
                b.add_tuple(rid, EntityId::from_index(e1), EntityId::from_index(e2));
            }
        }
        b.finish()
    }

    fn handles(&self) -> (DomainTypes, DomainRelations) {
        let t = |i: usize| TypeId::from_index(i);
        let h = &self.handles_types;
        let types = DomainTypes {
            person: t(h[0]),
            actor: t(h[1]),
            director: t(h[2]),
            producer: t(h[3]),
            novelist: t(h[4]),
            footballer: t(h[5]),
            politician: t(h[6]),
            creative_work: t(h[7]),
            movie: t(h[8]),
            book: t(h[9]),
            novel: t(h[10]),
            organization: t(h[11]),
            club: t(h[12]),
            place: t(h[13]),
            country: t(h[14]),
            city: t(h[15]),
            language: t(h[16]),
        };
        let r = |i: usize| RelationId::from_index(i);
        let relations = DomainRelations {
            acted_in: r(0),
            directed: r(1),
            wrote: r(2),
            official_language: r(3),
            produced: r(4),
            plays_for: r(5),
            born_in: r(6),
            capital: r(7),
            adapted_from: r(8),
            leader_of: r(9),
            narrated_by: r(10),
            wrote_screenplay: r(11),
            translated: r(12),
            minority_language: r(13),
            distributed_by: r(14),
        };
        (types, relations)
    }
}

fn roman(n: usize) -> String {
    // Small values only (disambiguation suffixes).
    const PAIRS: &[(usize, &str)] = &[(10, "X"), (9, "IX"), (5, "V"), (4, "IV"), (1, "I")];
    let mut n = n;
    let mut out = String::new();
    for &(v, s) in PAIRS {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CatalogStats;

    fn tiny_world() -> World {
        generate_world(&WorldConfig::tiny(7)).expect("world generates")
    }

    #[test]
    fn generation_is_deterministic() {
        let w1 = generate_world(&WorldConfig::tiny(9)).unwrap();
        let w2 = generate_world(&WorldConfig::tiny(9)).unwrap();
        assert_eq!(w1.catalog.num_entities(), w2.catalog.num_entities());
        assert_eq!(w1.catalog.num_types(), w2.catalog.num_types());
        for e in w1.catalog.entity_ids() {
            assert_eq!(w1.catalog.entity_name(e), w2.catalog.entity_name(e));
        }
    }

    #[test]
    fn oracle_and_catalog_share_ids() {
        let w = tiny_world();
        assert_eq!(w.catalog.num_entities(), w.oracle.num_entities());
        assert_eq!(w.catalog.num_types(), w.oracle.num_types());
        assert_eq!(w.catalog.num_relations(), w.oracle.num_relations());
        for e in w.catalog.entity_ids() {
            assert_eq!(w.catalog.entity_name(e), w.oracle.entity_name(e));
        }
        for t in w.catalog.type_ids() {
            assert_eq!(w.catalog.type_name(t), w.oracle.type_name(t));
        }
    }

    #[test]
    fn degraded_catalog_is_missing_links() {
        let w = generate_world(&WorldConfig::default()).unwrap();
        let count_instances =
            |c: &Catalog| -> usize { c.entity_ids().map(|e| c.entity(e).direct_types.len()).sum() };
        assert!(
            count_instances(&w.catalog) < count_instances(&w.oracle),
            "published catalog should have fewer ∈ edges than the oracle"
        );
    }

    #[test]
    fn rosters_are_consistent_with_oracle_types() {
        let w = tiny_world();
        for &a in &w.entities.actors {
            assert!(w.oracle.is_instance(a, w.types.actor));
            assert!(w.oracle.is_instance(a, w.types.person));
        }
        for &m in &w.entities.movies {
            assert!(w.oracle.is_instance(m, w.types.movie));
        }
        for &n in &w.entities.novels {
            assert!(w.oracle.is_instance(n, w.types.novel));
            assert!(w.oracle.is_instance(n, w.types.book));
        }
    }

    #[test]
    fn figure13_relations_have_expected_schemas() {
        let w = tiny_world();
        let cat = &w.oracle;
        let r = cat.relation(w.relations.acted_in);
        assert_eq!(cat.type_name(r.left_type), "movie");
        assert_eq!(cat.type_name(r.right_type), "actor");
        let r = cat.relation(w.relations.official_language);
        assert_eq!(cat.type_name(r.left_type), "country");
        assert_eq!(cat.type_name(r.right_type), "language");
        assert_eq!(w.relations.figure13().len(), 5);
    }

    #[test]
    fn tuples_respect_oracle_schemas() {
        // The oracle is built with strict schema checking; reaching here
        // means `materialize(degrade=false)` validated every tuple.
        let w = tiny_world();
        let rel = w.oracle.relation(w.relations.directed);
        assert!(!rel.tuples.is_empty());
        for &(m, d) in rel.tuples.iter().take(20) {
            assert!(w.oracle.is_instance(m, w.types.movie));
            assert!(w.oracle.is_instance(d, w.types.director));
        }
    }

    #[test]
    fn world_has_lemma_ambiguity() {
        let w = generate_world(&WorldConfig::default()).unwrap();
        let stats = CatalogStats::compute(&w.catalog);
        assert!(
            stats.lemma_ambiguity_rate() > 0.03,
            "ambiguity rate too low: {}",
            stats.lemma_ambiguity_rate()
        );
        assert!(stats.num_entities > 3000);
        assert!(stats.num_relations == 15);
    }

    #[test]
    fn functional_relations_are_functional_in_oracle() {
        let w = tiny_world();
        let rel = w.oracle.relation(w.relations.capital);
        assert!(rel.cardinality.functional_lr());
        for (&_e, rights) in rel.by_left.iter() {
            assert!(rights.len() <= 1, "capital must be one-to-one");
        }
        let rel = w.oracle.relation(w.relations.directed);
        for (&_e, rights) in rel.by_left.iter() {
            assert!(rights.len() <= 1, "directed is many-to-one (one director per movie)");
        }
    }

    #[test]
    fn adaptations_share_titles_across_types() {
        let w = generate_world(&WorldConfig::default()).unwrap();
        let rel = w.oracle.relation(w.relations.adapted_from);
        assert!(!rel.tuples.is_empty(), "some movies are adaptations");
        let (m, n) = rel.tuples[0];
        let movie_lemmas = w.oracle.entity_lemmas(m);
        let novel_lemmas = w.oracle.entity_lemmas(n);
        assert!(
            movie_lemmas.iter().any(|ml| novel_lemmas.contains(ml)),
            "adaptation shares the novel's title: {movie_lemmas:?} vs {novel_lemmas:?}"
        );
    }

    #[test]
    fn roman_numerals() {
        assert_eq!(roman(2), "II");
        assert_eq!(roman(4), "IV");
        assert_eq!(roman(9), "IX");
    }
}

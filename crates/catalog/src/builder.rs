//! Incremental catalog construction with validation.
//!
//! A [`CatalogBuilder`] interns types, entities and relations by canonical
//! name, accumulates subtype / instance / tuple edges, and on
//! [`CatalogBuilder::finish`] validates the type DAG (acyclicity, single
//! root) and precomputes the transitive-closure structures the annotator
//! needs (`T(E)`, `E(T)`, distances, participation statistics).

use std::collections::HashMap;

use crate::catalog::Catalog;
use crate::error::CatalogError;
use crate::ids::{EntityId, RelationId, TypeId};
use crate::schema::{Cardinality, Entity, Relation, TypeNode};

/// Name of the synthetic root type inserted when the hierarchy has no single
/// top element. Mirrors the paper's convention: "If not already present, we
/// can create a root type that reaches all other types" (§3.1).
pub const ROOT_TYPE_NAME: &str = "entity (root)";

/// Builder for [`Catalog`]. See the module docs for the workflow.
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    types: Vec<TypeNode>,
    type_by_name: HashMap<String, TypeId>,
    entities: Vec<Entity>,
    entity_by_name: HashMap<String, EntityId>,
    relations: Vec<RelationDraft>,
    relation_by_name: HashMap<String, RelationId>,
    /// When true (default), relation tuples whose members are not instances
    /// of the schema types are rejected. Disabled by the synthetic-world
    /// generator when it degrades a catalog by deleting instance links.
    strict_schemas: bool,
}

#[derive(Debug)]
struct RelationDraft {
    name: String,
    left_type: TypeId,
    right_type: TypeId,
    cardinality: Cardinality,
    tuples: Vec<(EntityId, EntityId)>,
}

impl CatalogBuilder {
    /// Creates an empty builder with strict schema checking enabled.
    pub fn new() -> Self {
        CatalogBuilder { strict_schemas: true, ..Default::default() }
    }

    /// Disables the check that relation tuple members are instances of the
    /// schema types. Useful when modelling *incomplete* catalogs, where an
    /// `∈` link may be missing while the relation tuple survives — exactly
    /// the situation the paper's missing-link feature targets (§4.2.3).
    pub fn allow_schema_violations(&mut self) -> &mut Self {
        self.strict_schemas = false;
        self
    }

    /// Number of types added so far.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of entities added so far.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Adds a type with the given canonical name and extra lemmas.
    ///
    /// The canonical name is automatically the first lemma. Returns an error
    /// if the name is already taken.
    pub fn add_type<S: Into<String>>(
        &mut self,
        name: S,
        extra_lemmas: &[&str],
    ) -> Result<TypeId, CatalogError> {
        let name = name.into();
        if self.type_by_name.contains_key(&name) {
            return Err(CatalogError::DuplicateName { kind: "type", name });
        }
        let id = TypeId::from_index(self.types.len());
        let mut lemmas = Vec::with_capacity(1 + extra_lemmas.len());
        lemmas.push(name.clone());
        lemmas.extend(extra_lemmas.iter().map(|s| s.to_string()));
        self.types.push(TypeNode {
            name: name.clone(),
            lemmas,
            parents: Vec::new(),
            children: Vec::new(),
        });
        self.type_by_name.insert(name, id);
        Ok(id)
    }

    /// Returns the id of an existing type by canonical name.
    pub fn type_id(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Returns the id of an existing entity by canonical name.
    pub fn entity_id(&self, name: &str) -> Option<EntityId> {
        self.entity_by_name.get(name).copied()
    }

    /// Returns the id of an existing relation by canonical name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relation_by_name.get(name).copied()
    }

    /// Adds an extra lemma to an existing type.
    pub fn add_type_lemma(&mut self, t: TypeId, lemma: &str) {
        let node = &mut self.types[t.index()];
        if !node.lemmas.iter().any(|l| l == lemma) {
            node.lemmas.push(lemma.to_string());
        }
    }

    /// Declares `child ⊆ parent`. Duplicate declarations are ignored.
    pub fn add_subtype(&mut self, child: TypeId, parent: TypeId) {
        if child == parent {
            return;
        }
        let node = &mut self.types[child.index()];
        if !node.parents.contains(&parent) {
            node.parents.push(parent);
            self.types[parent.index()].children.push(child);
        }
    }

    /// Removes a `child ⊆ parent` edge if present (used to model catalog
    /// incompleteness). Returns true if an edge was removed.
    pub fn remove_subtype(&mut self, child: TypeId, parent: TypeId) -> bool {
        let node = &mut self.types[child.index()];
        let before = node.parents.len();
        node.parents.retain(|&p| p != parent);
        if node.parents.len() != before {
            self.types[parent.index()].children.retain(|&c| c != child);
            true
        } else {
            false
        }
    }

    /// Adds an entity with canonical name, extra lemmas, and direct types.
    pub fn add_entity<S: Into<String>>(
        &mut self,
        name: S,
        extra_lemmas: &[&str],
        direct_types: &[TypeId],
    ) -> Result<EntityId, CatalogError> {
        let name = name.into();
        if self.entity_by_name.contains_key(&name) {
            return Err(CatalogError::DuplicateName { kind: "entity", name });
        }
        let id = EntityId::from_index(self.entities.len());
        let mut lemmas = Vec::with_capacity(1 + extra_lemmas.len());
        lemmas.push(name.clone());
        for l in extra_lemmas {
            if !lemmas.iter().any(|x| x == l) {
                lemmas.push(l.to_string());
            }
        }
        self.entities.push(Entity {
            name: name.clone(),
            lemmas,
            direct_types: direct_types.to_vec(),
        });
        self.entity_by_name.insert(name, id);
        Ok(id)
    }

    /// Adds an extra lemma to an existing entity.
    pub fn add_entity_lemma(&mut self, e: EntityId, lemma: &str) {
        let ent = &mut self.entities[e.index()];
        if !ent.lemmas.iter().any(|l| l == lemma) {
            ent.lemmas.push(lemma.to_string());
        }
    }

    /// Adds a direct `∈` edge from an entity to a type.
    pub fn add_instance(&mut self, e: EntityId, t: TypeId) {
        let ent = &mut self.entities[e.index()];
        if !ent.direct_types.contains(&t) {
            ent.direct_types.push(t);
        }
    }

    /// Removes a direct `∈` edge (catalog-incompleteness modelling).
    /// Returns true if an edge was removed.
    pub fn remove_instance(&mut self, e: EntityId, t: TypeId) -> bool {
        let ent = &mut self.entities[e.index()];
        let before = ent.direct_types.len();
        ent.direct_types.retain(|&x| x != t);
        ent.direct_types.len() != before
    }

    /// Declares a relation `name(left_type, right_type)` with a cardinality.
    pub fn add_relation<S: Into<String>>(
        &mut self,
        name: S,
        left_type: TypeId,
        right_type: TypeId,
        cardinality: Cardinality,
    ) -> Result<RelationId, CatalogError> {
        let name = name.into();
        if self.relation_by_name.contains_key(&name) {
            return Err(CatalogError::DuplicateName { kind: "relation", name });
        }
        let id = RelationId::from_index(self.relations.len());
        self.relations.push(RelationDraft {
            name: name.clone(),
            left_type,
            right_type,
            cardinality,
            tuples: Vec::new(),
        });
        self.relation_by_name.insert(name, id);
        Ok(id)
    }

    /// Appends a tuple `B(e1, e2)` to a relation's extension.
    pub fn add_tuple(&mut self, b: RelationId, e1: EntityId, e2: EntityId) {
        self.relations[b.index()].tuples.push((e1, e2));
    }

    /// Validates the accumulated data and produces an immutable [`Catalog`].
    ///
    /// Validation: the type graph must be acyclic; entities must reference
    /// existing types; relation tuples must reference existing entities and
    /// (unless [`CatalogBuilder::allow_schema_violations`] was called) be
    /// instances of the schema types. A synthetic root type is added when the
    /// hierarchy does not already have a unique top element, and every
    /// parentless type (and typeless entity) is attached to it.
    pub fn finish(mut self) -> Result<Catalog, CatalogError> {
        self.ensure_root();
        self.check_acyclic()?;
        Catalog::from_parts(
            self.types,
            self.type_by_name,
            self.entities,
            self.entity_by_name,
            self.relations.into_iter().map(build_relation).collect(),
            self.relation_by_name,
            self.strict_schemas,
        )
    }

    fn ensure_root(&mut self) {
        let parentless: Vec<TypeId> = (0..self.types.len())
            .map(TypeId::from_index)
            .filter(|t| self.types[t.index()].parents.is_empty())
            .collect();
        let root = if parentless.len() == 1 && !self.type_by_name.contains_key(ROOT_TYPE_NAME) {
            // A unique existing top element serves as the root.
            return;
        } else if let Some(&r) = self.type_by_name.get(ROOT_TYPE_NAME) {
            r
        } else {
            let id = TypeId::from_index(self.types.len());
            self.types.push(TypeNode {
                name: ROOT_TYPE_NAME.to_string(),
                lemmas: vec![ROOT_TYPE_NAME.to_string()],
                parents: Vec::new(),
                children: Vec::new(),
            });
            self.type_by_name.insert(ROOT_TYPE_NAME.to_string(), id);
            id
        };
        for t in parentless {
            if t != root {
                self.add_subtype(t, root);
            }
        }
        // Entities with no direct type become direct instances of the root.
        for e in &mut self.entities {
            if e.direct_types.is_empty() {
                e.direct_types.push(root);
            }
        }
    }

    fn check_acyclic(&self) -> Result<(), CatalogError> {
        // Kahn's algorithm over child → parent edges.
        let n = self.types.len();
        let mut indeg = vec![0usize; n]; // number of children pointing at me? we
                                         // topologically sort over parent edges:
                                         // indeg[t] = number of parents of t.
        for t in &self.types {
            let _ = t;
        }
        for (i, t) in self.types.iter().enumerate() {
            indeg[i] = t.parents.len();
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &c in &self.types[i].children {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    queue.push(c.index());
                }
            }
        }
        if seen != n {
            // Find a type still carrying in-degree for the error message.
            let bad = (0..n).find(|&i| indeg[i] > 0).unwrap_or(0);
            return Err(CatalogError::CyclicTypeHierarchy {
                type_name: self.types[bad].name.clone(),
            });
        }
        Ok(())
    }
}

fn build_relation(d: RelationDraft) -> Relation {
    let mut by_left: HashMap<EntityId, Vec<EntityId>> = HashMap::new();
    let mut by_right: HashMap<EntityId, Vec<EntityId>> = HashMap::new();
    let mut tuples = Vec::with_capacity(d.tuples.len());
    for (e1, e2) in d.tuples {
        let rights = by_left.entry(e1).or_default();
        match rights.binary_search(&e2) {
            Ok(_) => continue, // duplicate tuple
            Err(pos) => rights.insert(pos, e2),
        }
        let lefts = by_right.entry(e2).or_default();
        if let Err(pos) = lefts.binary_search(&e1) {
            lefts.insert(pos, e1);
        }
        tuples.push((e1, e2));
    }
    Relation {
        name: d.name,
        left_type: d.left_type,
        right_type: d.right_type,
        cardinality: d.cardinality,
        tuples,
        by_left,
        by_right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = CatalogBuilder::new();
        b.add_type("person", &[]).unwrap();
        assert!(matches!(
            b.add_type("person", &[]),
            Err(CatalogError::DuplicateName { kind: "type", .. })
        ));
        let t = b.type_id("person").unwrap();
        b.add_entity("Alice", &[], &[t]).unwrap();
        assert!(b.add_entity("Alice", &[], &[t]).is_err());
    }

    #[test]
    fn cycles_are_detected() {
        let mut b = CatalogBuilder::new();
        let a = b.add_type("a", &[]).unwrap();
        let c = b.add_type("b", &[]).unwrap();
        b.add_subtype(a, c);
        b.add_subtype(c, a);
        assert!(matches!(b.finish(), Err(CatalogError::CyclicTypeHierarchy { .. })));
    }

    #[test]
    fn self_subtype_edges_are_ignored() {
        let mut b = CatalogBuilder::new();
        let a = b.add_type("a", &[]).unwrap();
        b.add_subtype(a, a);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn root_is_synthesized_for_forests() {
        let mut b = CatalogBuilder::new();
        let a = b.add_type("a", &[]).unwrap();
        let c = b.add_type("b", &[]).unwrap();
        b.add_entity("x", &[], &[a]).unwrap();
        b.add_entity("y", &[], &[c]).unwrap();
        let cat = b.finish().unwrap();
        let root = cat.root();
        assert_eq!(cat.type_name(root), ROOT_TYPE_NAME);
        // Both original types reach the root.
        assert!(cat.is_subtype(a, root));
        assert!(cat.is_subtype(c, root));
    }

    #[test]
    fn unique_top_type_becomes_root_without_synthesis() {
        let mut b = CatalogBuilder::new();
        let top = b.add_type("thing", &[]).unwrap();
        let a = b.add_type("a", &[]).unwrap();
        b.add_subtype(a, top);
        let cat = b.finish().unwrap();
        assert_eq!(cat.root(), top);
        assert_eq!(cat.num_types(), 2);
    }

    #[test]
    fn duplicate_tuples_are_deduplicated() {
        let mut b = CatalogBuilder::new();
        let t = b.add_type("t", &[]).unwrap();
        let e1 = b.add_entity("x", &[], &[t]).unwrap();
        let e2 = b.add_entity("y", &[], &[t]).unwrap();
        let r = b.add_relation("rel", t, t, Cardinality::ManyToMany).unwrap();
        b.add_tuple(r, e1, e2);
        b.add_tuple(r, e1, e2);
        let cat = b.finish().unwrap();
        assert_eq!(cat.relation(r).tuples.len(), 1);
    }

    #[test]
    fn remove_edges_work() {
        let mut b = CatalogBuilder::new();
        let top = b.add_type("top", &[]).unwrap();
        let sub = b.add_type("sub", &[]).unwrap();
        b.add_subtype(sub, top);
        assert!(b.remove_subtype(sub, top));
        assert!(!b.remove_subtype(sub, top));
        let e = b.add_entity("x", &[], &[sub]).unwrap();
        assert!(b.remove_instance(e, sub));
        assert!(!b.remove_instance(e, sub));
    }
}

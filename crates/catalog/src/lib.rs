//! # webtable-catalog
//!
//! The catalog substrate of the `webtable` system — the Rust analogue of the
//! YAGO snapshot used by *Annotating and Searching Web Tables Using
//! Entities, Types and Relationships* (Limaye, Sarawagi, Chakrabarti;
//! VLDB 2010), §3.1.
//!
//! A catalog holds:
//!
//! * a **type DAG** with subtype (`⊆`) edges and a root reaching all types;
//! * **entities** attached to types by instance (`∈`) edges, each carrying
//!   *lemmas* — the strings by which the entity may be mentioned;
//! * **binary relations** `B(T1, T2)` with cardinalities and tuple stores.
//!
//! [`Catalog`] precomputes the closure structures the annotator's features
//! need (`T(E)`, `E(T)`, `dist(E,T)`, specificity, participation fractions,
//! the missing-link relatedness hint). [`CatalogBuilder`] constructs and
//! validates catalogs; [`generator`] synthesizes YAGO-like worlds with
//! controllable ambiguity and incompleteness; [`io`] persists catalogs in a
//! line-oriented TSV format.
//!
//! ```
//! use webtable_catalog::{CatalogBuilder, Cardinality};
//!
//! let mut b = CatalogBuilder::new();
//! let person = b.add_type("person", &["human"]).unwrap();
//! let physicist = b.add_type("physicist", &[]).unwrap();
//! b.add_subtype(physicist, person);
//! let e = b.add_entity("Albert Einstein", &["Einstein"], &[physicist]).unwrap();
//! let cat = b.finish().unwrap();
//! assert!(cat.is_instance(e, person));
//! assert_eq!(cat.dist(e, person), Some(2)); // ∈ edge + one ⊆ edge
//! ```

pub mod builder;
pub mod catalog;
pub mod error;
pub mod generator;
pub mod ids;
pub mod io;
pub mod names;
pub mod schema;
pub mod stats;

pub use builder::{CatalogBuilder, ROOT_TYPE_NAME};
pub use catalog::Catalog;
pub use error::CatalogError;
pub use generator::{
    generate_world, DomainEntities, DomainRelations, DomainTypes, World, WorldConfig,
};
pub use ids::{EntityId, RelationId, TypeId};
pub use schema::{Cardinality, Entity, Relation, TypeNode};
pub use stats::CatalogStats;

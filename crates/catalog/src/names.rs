//! Deterministic pseudo-word pools for the synthetic world generator.
//!
//! Names are built from syllables so that (a) runs are reproducible from a
//! seed, (b) pools of controllable size create controllable lemma ambiguity
//! (smaller surname pool ⇒ more people share a surname), and (c) tokens are
//! plausible enough for similarity measures to behave like they do on real
//! names (shared prefixes, varying lengths).

use rand::rngs::StdRng;
use rand::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kr", "l", "m", "n", "p",
    "pr", "qu", "r", "s", "sh", "st", "t", "th", "tr", "v", "w", "y", "z",
];
const NUCLEI: &[&str] = &["a", "e", "i", "o", "u", "ai", "ea", "ee", "ia", "io", "oa", "ou"];
const CODAS: &[&str] =
    &["", "", "", "l", "n", "r", "s", "t", "m", "d", "k", "nd", "nt", "rn", "st", "th", "ck"];

/// A deterministic pool of distinct capitalized pseudo-words.
#[derive(Debug, Clone)]
pub struct NamePool {
    words: Vec<String>,
}

impl NamePool {
    /// Generates `n` distinct words of `min_syllables..=max_syllables`.
    pub fn generate(
        rng: &mut StdRng,
        n: usize,
        min_syllables: usize,
        max_syllables: usize,
    ) -> Self {
        assert!(min_syllables >= 1 && max_syllables >= min_syllables);
        let mut words = Vec::with_capacity(n);
        let mut seen = std::collections::HashSet::with_capacity(n * 2);
        let mut guard = 0usize;
        while words.len() < n {
            guard += 1;
            assert!(guard < n * 1000 + 10_000, "name pool exhausted; widen syllable space");
            let syllables = rng.gen_range(min_syllables..=max_syllables);
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
                w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
                w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
            }
            let w = capitalize(&w);
            if seen.insert(w.clone()) {
                words.push(w);
            }
        }
        NamePool { words }
    }

    /// Number of words in the pool.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Returns the `i`-th word (wrapping around the pool size).
    pub fn word(&self, i: usize) -> &str {
        &self.words[i % self.words.len()]
    }

    /// Picks a uniformly random word.
    pub fn pick<'a>(&'a self, rng: &mut StdRng) -> &'a str {
        &self.words[rng.gen_range(0..self.words.len())]
    }

    /// All words in the pool.
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

/// Uppercases the first character.
pub fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;

    use super::*;

    #[test]
    fn pools_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let pa = NamePool::generate(&mut a, 50, 1, 3);
        let pb = NamePool::generate(&mut b, 50, 1, 3);
        assert_eq!(pa.words(), pb.words());
    }

    #[test]
    fn pools_contain_distinct_capitalized_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = NamePool::generate(&mut rng, 200, 1, 2);
        assert_eq!(pool.len(), 200);
        let set: std::collections::HashSet<_> = pool.words().iter().collect();
        assert_eq!(set.len(), 200);
        for w in pool.words() {
            assert!(w.chars().next().unwrap().is_uppercase(), "{w}");
            assert!(!w.is_empty());
        }
    }

    #[test]
    fn word_wraps_around() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = NamePool::generate(&mut rng, 10, 1, 1);
        assert_eq!(pool.word(3), pool.word(13));
    }

    #[test]
    fn capitalize_handles_empty_and_unicode() {
        assert_eq!(capitalize(""), "");
        assert_eq!(capitalize("abc"), "Abc");
        assert_eq!(capitalize("ábc"), "Ábc");
    }
}

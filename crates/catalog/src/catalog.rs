//! The immutable, query-optimized catalog.
//!
//! A [`Catalog`] is produced by [`crate::builder::CatalogBuilder::finish`]
//! and is the Rust analogue of the paper's YAGO snapshot (§3.1): a type DAG,
//! entities with lemmas, and binary relations with tuple stores. All
//! transitive structures used by the annotator's features are precomputed
//! here once:
//!
//! * `T(E)` — all type ancestors of an entity, with the graph distance
//!   `dist(E, T)` (one `∈` edge followed by zero or more `⊆` edges, §4.2.3);
//! * `E(T)` — the transitive extent of a type (sorted entity ids);
//! * type specificity `|E| / |E(T)|` (the IDF-style feature);
//! * per-relation participation fractions (feature `f4`);
//! * an entity-pair → relations index (candidate relations, §4.3).
//!
//! The catalog is logically immutable and cheap to share across
//! annotation threads (`Send + Sync`); the only interior mutability is a
//! memo table for derived relatedness ratios.

use std::collections::HashMap;
use std::sync::RwLock;

use crate::error::CatalogError;
use crate::ids::{EntityId, RelationId, TypeId};
use crate::schema::{Entity, Relation, TypeNode};

/// Immutable entity/type/relation catalog. See the module docs.
#[derive(Debug)]
pub struct Catalog {
    types: Vec<TypeNode>,
    type_by_name: HashMap<String, TypeId>,
    entities: Vec<Entity>,
    entity_by_name: HashMap<String, EntityId>,
    relations: Vec<Relation>,
    relation_by_name: HashMap<String, RelationId>,
    root: TypeId,
    /// Per type: all supertypes (transitive, including self), sorted by id.
    ancestors: Vec<Vec<TypeId>>,
    /// Per type: minimum number of `⊆` edges from the root down to the type.
    depth: Vec<u32>,
    /// Per entity: `T(E)` sorted by id.
    entity_types: Vec<Vec<TypeId>>,
    /// Per entity: `dist(E, T)` aligned with `entity_types`.
    entity_type_dist: Vec<Vec<u32>>,
    /// Per type: `E(T)` sorted by entity id.
    extent: Vec<Vec<EntityId>>,
    /// Per type: `min_{E' ∈ E(T)} dist(E', T)`; `u32::MAX` for empty extents.
    min_entity_dist: Vec<u32>,
    /// Entity pair → relations holding between them.
    pair_relations: HashMap<(EntityId, EntityId), Vec<RelationId>>,
    /// Per relation: fraction of `E(T1)` appearing on the left.
    participation_left: Vec<f64>,
    /// Per relation: fraction of `E(T2)` appearing on the right.
    participation_right: Vec<f64>,
    /// Memo for [`Catalog::missing_link_relatedness`] ratios, keyed by
    /// `(direct type, target type)`. Logically the catalog stays
    /// immutable; this is pure memoization of a derived quantity that the
    /// annotator queries for the same type pairs across every table of a
    /// corpus.
    relatedness_memo: RwLock<HashMap<(TypeId, TypeId), f64>>,
}

impl Catalog {
    /// Assembles a catalog from builder parts. Used by
    /// [`crate::builder::CatalogBuilder::finish`]; not public API.
    pub(crate) fn from_parts(
        types: Vec<TypeNode>,
        type_by_name: HashMap<String, TypeId>,
        entities: Vec<Entity>,
        entity_by_name: HashMap<String, EntityId>,
        relations: Vec<Relation>,
        relation_by_name: HashMap<String, RelationId>,
        strict_schemas: bool,
    ) -> Result<Catalog, CatalogError> {
        let root = (0..types.len())
            .map(TypeId::from_index)
            .find(|t| types[t.index()].parents.is_empty())
            .expect("builder guarantees a root type");

        let ancestors = compute_ancestors(&types)?;
        let depth = compute_depth(&types, root);
        let (entity_types, entity_type_dist) = compute_entity_types(&types, &entities);
        let (extent, min_entity_dist) =
            compute_extents(types.len(), &entity_types, &entity_type_dist);

        if strict_schemas {
            for rel in &relations {
                for &(e1, e2) in &rel.tuples {
                    let ok1 = entity_types[e1.index()].binary_search(&rel.left_type).is_ok();
                    let ok2 = entity_types[e2.index()].binary_search(&rel.right_type).is_ok();
                    if !ok1 || !ok2 {
                        return Err(CatalogError::SchemaViolation {
                            relation: rel.name.clone(),
                            detail: format!(
                                "tuple ({}, {}) violates schema ({}, {})",
                                entities[e1.index()].name,
                                entities[e2.index()].name,
                                types[rel.left_type.index()].name,
                                types[rel.right_type.index()].name
                            ),
                        });
                    }
                }
            }
        }

        let mut pair_relations: HashMap<(EntityId, EntityId), Vec<RelationId>> = HashMap::new();
        for (ri, rel) in relations.iter().enumerate() {
            let rid = RelationId::from_index(ri);
            for &(e1, e2) in &rel.tuples {
                pair_relations.entry((e1, e2)).or_default().push(rid);
            }
        }

        let mut participation_left = Vec::with_capacity(relations.len());
        let mut participation_right = Vec::with_capacity(relations.len());
        for rel in &relations {
            let el = extent[rel.left_type.index()].len().max(1) as f64;
            let er = extent[rel.right_type.index()].len().max(1) as f64;
            participation_left.push((rel.distinct_left() as f64 / el).min(1.0));
            participation_right.push((rel.distinct_right() as f64 / er).min(1.0));
        }

        Ok(Catalog {
            types,
            type_by_name,
            entities,
            entity_by_name,
            relations,
            relation_by_name,
            root,
            ancestors,
            depth,
            entity_types,
            entity_type_dist,
            extent,
            min_entity_dist,
            pair_relations,
            participation_left,
            participation_right,
            relatedness_memo: RwLock::new(HashMap::new()),
        })
    }

    // ------------------------------------------------------------------
    // Counts and basic accessors
    // ------------------------------------------------------------------

    /// Number of types, `|T|`.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of entities, `|E|`.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Number of relation names, `|B|`.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// The root of the type DAG (reaches every type).
    pub fn root(&self) -> TypeId {
        self.root
    }

    /// Iterator over all type ids.
    pub fn type_ids(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len()).map(TypeId::from_index)
    }

    /// Iterator over all entity ids.
    pub fn entity_ids(&self) -> impl Iterator<Item = EntityId> + '_ {
        (0..self.entities.len()).map(EntityId::from_index)
    }

    /// Iterator over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len()).map(RelationId::from_index)
    }

    /// The full record of a type.
    pub fn type_node(&self, t: TypeId) -> &TypeNode {
        &self.types[t.index()]
    }

    /// Canonical name of a type.
    pub fn type_name(&self, t: TypeId) -> &str {
        &self.types[t.index()].name
    }

    /// Lemmas `L(T)` of a type (canonical name first).
    pub fn type_lemmas(&self, t: TypeId) -> &[String] {
        &self.types[t.index()].lemmas
    }

    /// The full record of an entity.
    pub fn entity(&self, e: EntityId) -> &Entity {
        &self.entities[e.index()]
    }

    /// Canonical name of an entity.
    pub fn entity_name(&self, e: EntityId) -> &str {
        &self.entities[e.index()].name
    }

    /// Lemmas `L(E)` of an entity (canonical name first).
    pub fn entity_lemmas(&self, e: EntityId) -> &[String] {
        &self.entities[e.index()].lemmas
    }

    /// The full record of a relation.
    pub fn relation(&self, b: RelationId) -> &Relation {
        &self.relations[b.index()]
    }

    /// Canonical name of a relation.
    pub fn relation_name(&self, b: RelationId) -> &str {
        &self.relations[b.index()].name
    }

    /// Looks up a type by canonical name.
    pub fn type_named(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Looks up an entity by canonical name.
    pub fn entity_named(&self, name: &str) -> Option<EntityId> {
        self.entity_by_name.get(name).copied()
    }

    /// Looks up a relation by canonical name.
    pub fn relation_named(&self, name: &str) -> Option<RelationId> {
        self.relation_by_name.get(name).copied()
    }

    // ------------------------------------------------------------------
    // Type DAG queries
    // ------------------------------------------------------------------

    /// All supertypes of `t` (transitive, including `t` itself), sorted by id.
    pub fn ancestors(&self, t: TypeId) -> &[TypeId] {
        &self.ancestors[t.index()]
    }

    /// True iff `t1 ⊆* t2` (zero or more subtype edges from `t2` down to `t1`).
    pub fn is_subtype(&self, t1: TypeId, t2: TypeId) -> bool {
        self.ancestors[t1.index()].binary_search(&t2).is_ok()
    }

    /// Immediate supertypes of `t`.
    pub fn parents(&self, t: TypeId) -> &[TypeId] {
        &self.types[t.index()].parents
    }

    /// Immediate subtypes of `t`.
    pub fn children(&self, t: TypeId) -> &[TypeId] {
        &self.types[t.index()].children
    }

    /// Minimum number of `⊆` edges from the root down to `t` (root has 0).
    pub fn depth(&self, t: TypeId) -> u32 {
        self.depth[t.index()]
    }

    /// Reduces a set of types to its most specific elements: those with no
    /// *proper* descendant also in the set. This is the candidate-selection
    /// rule of the LCA baseline (§4.5.1).
    pub fn most_specific(&self, types: &[TypeId]) -> Vec<TypeId> {
        let mut sorted: Vec<TypeId> = types.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted
            .iter()
            .copied()
            .filter(|&t| !sorted.iter().any(|&other| other != t && self.is_subtype(other, t)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Entity ↔ type queries
    // ------------------------------------------------------------------

    /// `T(E)`: all type ancestors of entity `e`, sorted by id.
    pub fn types_of(&self, e: EntityId) -> &[TypeId] {
        &self.entity_types[e.index()]
    }

    /// True iff `e ∈+ t`.
    pub fn is_instance(&self, e: EntityId, t: TypeId) -> bool {
        self.entity_types[e.index()].binary_search(&t).is_ok()
    }

    /// `dist(E, T)`: number of edges (`∈` followed by `⊆*`) on the shortest
    /// path from `e` up to `t`, or `None` if `e ∉+ t` (§4.2.3 treats this
    /// case as infinite distance).
    pub fn dist(&self, e: EntityId, t: TypeId) -> Option<u32> {
        let row = &self.entity_types[e.index()];
        row.binary_search(&t).ok().map(|i| self.entity_type_dist[e.index()][i])
    }

    /// `E(T)`: entities transitively reachable from `t`, sorted by id.
    pub fn extent(&self, t: TypeId) -> &[EntityId] {
        &self.extent[t.index()]
    }

    /// `|E(T)|`.
    pub fn extent_size(&self, t: TypeId) -> usize {
        self.extent[t.index()].len()
    }

    /// Type specificity `|E| / |E(T)|` (§4.2.3). Returns `|E| + 1` for an
    /// empty extent so that unused types rank as maximally specific.
    pub fn specificity(&self, t: TypeId) -> f64 {
        let n = self.num_entities() as f64;
        let ext = self.extent_size(t);
        if ext == 0 {
            n + 1.0
        } else {
            n / ext as f64
        }
    }

    /// `min_{E' ∈ E(T)} dist(E', T)`, the denominator of the missing-link
    /// feature (§4.2.3). `None` for empty extents.
    pub fn min_entity_dist(&self, t: TypeId) -> Option<u32> {
        let d = self.min_entity_dist[t.index()];
        (d != u32::MAX).then_some(d)
    }

    /// `|E(t1) ∩ E(t2)|` via sorted-vector intersection. When one extent is
    /// much smaller, probes the larger one by binary search
    /// (`O(min · log max)` instead of `O(min + max)`).
    pub fn extent_overlap(&self, t1: TypeId, t2: TypeId) -> usize {
        let (mut a, mut b) = (&self.extent[t1.index()], &self.extent[t2.index()]);
        if a.len() > b.len() {
            std::mem::swap(&mut a, &mut b);
        }
        if b.len() > 8 * a.len().max(1) {
            return a.iter().filter(|e| b.binary_search(e).is_ok()).count();
        }
        let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Maximum direct-type extent size considered by
    /// [`Catalog::missing_link_relatedness`]. The formula's `T'` is meant
    /// to be an entity's *specific* immediate parent ("Suppose T′ is the
    /// (only) immediate type ancestor of E", §4.2.3); a direct type with
    /// thousands of instances both dilutes the ratio toward zero and costs
    /// a large intersection, so it is treated as contributing zero.
    pub const MISSING_LINK_EXTENT_CAP: usize = 512;

    /// The missing-link relatedness hint of §4.2.3:
    /// `min_{T' : E ∈ T'} |E(T') ∩ E(T)| / |E(T')|`, over the immediate
    /// (direct) types `T'` of `e`. Zero when `e` has no direct type with a
    /// non-empty extent of specific size (see
    /// [`Catalog::MISSING_LINK_EXTENT_CAP`]).
    pub fn missing_link_relatedness(&self, e: EntityId, t: TypeId) -> f64 {
        let mut best: Option<f64> = None;
        for &tp in &self.entities[e.index()].direct_types {
            let denom = self.extent_size(tp);
            if denom == 0 || denom > Self::MISSING_LINK_EXTENT_CAP {
                continue;
            }
            let ratio = self.relatedness_ratio(tp, t, denom);
            best = Some(match best {
                Some(b) => b.min(ratio),
                None => ratio,
            });
        }
        best.unwrap_or(0.0)
    }

    /// `|E(tp) ∩ E(t)| / |E(tp)|`, memoized (see `relatedness_memo`).
    fn relatedness_ratio(&self, tp: TypeId, t: TypeId, denom: usize) -> f64 {
        if let Some(&r) = self.relatedness_memo.read().expect("memo lock").get(&(tp, t)) {
            return r;
        }
        let ratio = self.extent_overlap(tp, t) as f64 / denom as f64;
        self.relatedness_memo.write().expect("memo lock").insert((tp, t), ratio);
        ratio
    }

    // ------------------------------------------------------------------
    // Relation queries
    // ------------------------------------------------------------------

    /// Relations `B` with a tuple `B(e1, e2)` in the catalog.
    pub fn relations_between(&self, e1: EntityId, e2: EntityId) -> &[RelationId] {
        self.pair_relations.get(&(e1, e2)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True iff the catalog contains the tuple `b(e1, e2)`.
    pub fn has_tuple(&self, b: RelationId, e1: EntityId, e2: EntityId) -> bool {
        self.relations[b.index()].has_tuple(e1, e2)
    }

    /// Fraction of `E(T1)` (left) and `E(T2)` (right) participating in `b` —
    /// the second feature element of `f4` (§4.2.4).
    pub fn participation(&self, b: RelationId) -> (f64, f64) {
        (self.participation_left[b.index()], self.participation_right[b.index()])
    }
}

// ----------------------------------------------------------------------
// Closure computations
// ----------------------------------------------------------------------

fn compute_ancestors(types: &[TypeNode]) -> Result<Vec<Vec<TypeId>>, CatalogError> {
    // Memoized DFS over parent edges. The builder validated acyclicity, so
    // plain recursion-free iteration in reverse topological order works; we
    // use an explicit work list to stay robust for deep hierarchies.
    let n = types.len();
    let mut memo: Vec<Option<Vec<TypeId>>> = vec![None; n];
    for start in 0..n {
        if memo[start].is_some() {
            continue;
        }
        // Iterative post-order.
        let mut stack = vec![(start, 0usize)];
        while let Some(&mut (node, ref mut next_parent)) = stack.last_mut() {
            if memo[node].is_some() {
                stack.pop();
                continue;
            }
            let parents = &types[node].parents;
            if *next_parent < parents.len() {
                let p = parents[*next_parent].index();
                *next_parent += 1;
                if memo[p].is_none() {
                    stack.push((p, 0));
                }
                continue;
            }
            // All parents resolved: union them.
            let mut acc: Vec<TypeId> = vec![TypeId::from_index(node)];
            for p in parents {
                acc.extend_from_slice(memo[p.index()].as_ref().expect("post-order"));
            }
            acc.sort_unstable();
            acc.dedup();
            memo[node] = Some(acc);
            stack.pop();
        }
    }
    Ok(memo.into_iter().map(|v| v.expect("all visited")).collect())
}

fn compute_depth(types: &[TypeNode], root: TypeId) -> Vec<u32> {
    let mut depth = vec![u32::MAX; types.len()];
    depth[root.index()] = 0;
    let mut frontier = vec![root];
    let mut next = Vec::new();
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        for t in frontier.drain(..) {
            for &c in &types[t.index()].children {
                if depth[c.index()] == u32::MAX {
                    depth[c.index()] = d;
                    next.push(c);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    // Types unreachable from the root (possible only in hand-built partial
    // hierarchies) get a large sentinel depth.
    for d in depth.iter_mut() {
        if *d == u32::MAX {
            *d = u32::MAX / 2;
        }
    }
    depth
}

fn compute_entity_types(
    types: &[TypeNode],
    entities: &[Entity],
) -> (Vec<Vec<TypeId>>, Vec<Vec<u32>>) {
    let mut all_types = Vec::with_capacity(entities.len());
    let mut all_dists = Vec::with_capacity(entities.len());
    let mut dist_map: HashMap<TypeId, u32> = HashMap::new();
    let mut frontier: Vec<TypeId> = Vec::new();
    let mut next: Vec<TypeId> = Vec::new();
    for ent in entities {
        dist_map.clear();
        frontier.clear();
        // The `∈` edge contributes 1; each `⊆` edge adds 1 (§4.2.3).
        for &t in &ent.direct_types {
            dist_map.entry(t).or_insert(1);
            frontier.push(t);
        }
        let mut d = 1u32;
        while !frontier.is_empty() {
            d += 1;
            next.clear();
            for &t in frontier.iter() {
                for &p in &types[t.index()].parents {
                    dist_map.entry(p).or_insert_with(|| {
                        next.push(p);
                        d
                    });
                }
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        let mut pairs: Vec<(TypeId, u32)> = dist_map.iter().map(|(&t, &d)| (t, d)).collect();
        pairs.sort_unstable_by_key(|&(t, _)| t);
        all_types.push(pairs.iter().map(|&(t, _)| t).collect());
        all_dists.push(pairs.iter().map(|&(_, d)| d).collect());
    }
    (all_types, all_dists)
}

fn compute_extents(
    num_types: usize,
    entity_types: &[Vec<TypeId>],
    entity_type_dist: &[Vec<u32>],
) -> (Vec<Vec<EntityId>>, Vec<u32>) {
    let mut extent: Vec<Vec<EntityId>> = vec![Vec::new(); num_types];
    let mut min_dist = vec![u32::MAX; num_types];
    for (ei, (tys, dists)) in entity_types.iter().zip(entity_type_dist).enumerate() {
        let e = EntityId::from_index(ei);
        for (&t, &d) in tys.iter().zip(dists) {
            extent[t.index()].push(e); // entity ids ascending ⇒ sorted
            if d < min_dist[t.index()] {
                min_dist[t.index()] = d;
            }
        }
    }
    (extent, min_dist)
}

#[cfg(test)]
mod tests {
    use crate::builder::CatalogBuilder;
    use crate::ids::TypeId;
    use crate::schema::Cardinality;

    use super::*;

    /// Builds the book/person mini-catalog of the paper's Figure 1.
    fn figure1_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let entity = b.add_type("entity", &[]).unwrap();
        let person = b.add_type("person", &[]).unwrap();
        let physicist = b.add_type("physicist", &[]).unwrap();
        let book = b.add_type("book", &[]).unwrap();
        b.add_subtype(person, entity);
        b.add_subtype(physicist, person);
        b.add_subtype(book, entity);
        let einstein =
            b.add_entity("Albert Einstein", &["A. Einstein", "Einstein"], &[physicist]).unwrap();
        let stannard = b.add_entity("Russell Stannard", &["Stannard"], &[person]).unwrap();
        let b94 = b.add_entity("The Time and Space of Uncle Albert", &[], &[book]).unwrap();
        let b95 = b.add_entity("Uncle Albert and the Quantum Quest", &[], &[book]).unwrap();
        let b41 = b
            .add_entity("Relativity: The Special and the General Theory", &["Relativity"], &[book])
            .unwrap();
        let wrote = b.add_relation("writes", book, person, Cardinality::ManyToOne).unwrap();
        b.add_tuple(wrote, b94, stannard);
        b.add_tuple(wrote, b95, stannard);
        b.add_tuple(wrote, b41, einstein);
        b.finish().unwrap()
    }

    #[test]
    fn ancestors_include_self_and_are_transitive() {
        let cat = figure1_catalog();
        let physicist = cat.type_named("physicist").unwrap();
        let person = cat.type_named("person").unwrap();
        let entity = cat.type_named("entity").unwrap();
        let anc = cat.ancestors(physicist);
        assert!(anc.contains(&physicist));
        assert!(anc.contains(&person));
        assert!(anc.contains(&entity));
        assert_eq!(anc.len(), 3);
        assert!(cat.is_subtype(physicist, entity));
        assert!(!cat.is_subtype(entity, physicist));
    }

    #[test]
    fn entity_types_and_distances() {
        let cat = figure1_catalog();
        let e = cat.entity_named("Albert Einstein").unwrap();
        let physicist = cat.type_named("physicist").unwrap();
        let person = cat.type_named("person").unwrap();
        let entity = cat.type_named("entity").unwrap();
        let book = cat.type_named("book").unwrap();
        assert_eq!(cat.dist(e, physicist), Some(1)); // one ∈ edge
        assert_eq!(cat.dist(e, person), Some(2)); // ∈ then ⊆
        assert_eq!(cat.dist(e, entity), Some(3));
        assert_eq!(cat.dist(e, book), None);
        assert!(cat.is_instance(e, person));
        assert!(!cat.is_instance(e, book));
    }

    #[test]
    fn extents_are_sorted_and_transitive() {
        let cat = figure1_catalog();
        let person = cat.type_named("person").unwrap();
        let book = cat.type_named("book").unwrap();
        let entity = cat.type_named("entity").unwrap();
        assert_eq!(cat.extent_size(person), 2);
        assert_eq!(cat.extent_size(book), 3);
        assert_eq!(cat.extent_size(entity), 5);
        let ext = cat.extent(book);
        assert!(ext.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn specificity_prefers_narrow_types() {
        let cat = figure1_catalog();
        let physicist = cat.type_named("physicist").unwrap();
        let entity = cat.type_named("entity").unwrap();
        assert!(cat.specificity(physicist) > cat.specificity(entity));
        // Root extent = everything ⇒ specificity 1.
        assert!((cat.specificity(entity) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relations_between_entities() {
        let cat = figure1_catalog();
        let wrote = cat.relation_named("writes").unwrap();
        let b41 = cat.entity_named("Relativity: The Special and the General Theory").unwrap();
        let einstein = cat.entity_named("Albert Einstein").unwrap();
        let stannard = cat.entity_named("Russell Stannard").unwrap();
        assert_eq!(cat.relations_between(b41, einstein), &[wrote]);
        assert!(cat.relations_between(b41, stannard).is_empty());
        assert!(cat.has_tuple(wrote, b41, einstein));
        let (pl, pr) = cat.participation(wrote);
        assert!((pl - 1.0).abs() < 1e-12, "all books appear on the left");
        assert!((pr - 1.0).abs() < 1e-12, "both persons appear on the right");
    }

    #[test]
    fn most_specific_filters_ancestors() {
        let cat = figure1_catalog();
        let physicist = cat.type_named("physicist").unwrap();
        let person = cat.type_named("person").unwrap();
        let entity = cat.type_named("entity").unwrap();
        let book = cat.type_named("book").unwrap();
        let ms = cat.most_specific(&[physicist, person, entity, book]);
        assert!(ms.contains(&physicist));
        assert!(ms.contains(&book));
        assert!(!ms.contains(&person));
        assert!(!ms.contains(&entity));
    }

    #[test]
    fn missing_link_relatedness_detects_likely_links() {
        // Reproduce the paper's Nancy Drew anecdote in miniature (App. F):
        // `The Clue of the Black Keys` lost its ∈ edge to `nancy drew books`
        // but keeps `1951 novels`; most `1951 novels` are Nancy Drew books,
        // so relatedness should be high.
        let mut b = CatalogBuilder::new();
        let novel = b.add_type("novel", &[]).unwrap();
        let nancy = b.add_type("nancy drew books", &[]).unwrap();
        let y1951 = b.add_type("1951 novels", &[]).unwrap();
        b.add_subtype(nancy, novel);
        b.add_subtype(y1951, novel);
        // Three 1951 novels that are also Nancy Drew books.
        for i in 0..3 {
            b.add_entity(format!("nd{i}"), &[], &[nancy, y1951]).unwrap();
        }
        // The degraded entity: only the year category survives.
        let clue = b.add_entity("The Clue of the Black Keys", &[], &[y1951]).unwrap();
        // An unrelated 1951 novel to keep the ratio below 1.
        b.add_entity("other 1951 novel", &[], &[y1951]).unwrap();
        let cat = b.finish().unwrap();
        let rel = cat.missing_link_relatedness(clue, nancy);
        assert!(rel > 0.5, "3 of 5 1951-novels are nancy drew books: {rel}");
        assert!(rel < 1.0);
        assert_eq!(cat.dist(clue, nancy), None, "the link really is missing");
        assert_eq!(cat.min_entity_dist(nancy), Some(1));
    }

    #[test]
    fn depth_measures_edges_from_root() {
        let cat = figure1_catalog();
        assert_eq!(cat.depth(cat.root()), 0);
        let physicist = cat.type_named("physicist").unwrap();
        assert_eq!(cat.depth(physicist), 2);
    }

    #[test]
    fn extent_overlap_counts_shared_instances() {
        let cat = figure1_catalog();
        let person = cat.type_named("person").unwrap();
        let physicist = cat.type_named("physicist").unwrap();
        let book = cat.type_named("book").unwrap();
        assert_eq!(cat.extent_overlap(person, physicist), 1);
        assert_eq!(cat.extent_overlap(person, book), 0);
    }

    #[test]
    fn diamond_hierarchies_compute_min_distance() {
        // E ∈ A; A ⊆ B ⊆ D and A ⊆ D directly: dist must take the short way.
        let mut b = CatalogBuilder::new();
        let d = b.add_type("d", &[]).unwrap();
        let bb = b.add_type("b", &[]).unwrap();
        let a = b.add_type("a", &[]).unwrap();
        b.add_subtype(bb, d);
        b.add_subtype(a, bb);
        b.add_subtype(a, d);
        let e = b.add_entity("e", &[], &[a]).unwrap();
        let cat = b.finish().unwrap();
        assert_eq!(cat.dist(e, TypeId(0)), Some(2), "direct a⊆d beats a⊆b⊆d");
    }
}

//! Line-oriented TSV persistence for catalogs.
//!
//! The format is deliberately simple and diff-friendly (one record per
//! line, tab-separated fields, `|`-joined lemma lists). Special characters
//! inside names/lemmas (`\t`, `\n`, `|`, `%`) are percent-escaped.
//!
//! ```text
//! #webtable-catalog v1
//! T   <id> <name> <lemma|lemma|...>
//! TP  <type id> <parent type id>
//! E   <id> <name> <lemma|lemma|...>
//! ET  <entity id> <type id>
//! R   <id> <name> <left type id> <right type id> <cardinality>
//! RT  <relation id> <left entity id> <right entity id>
//! ```
//!
//! Records must appear in the above kind-order; ids must be dense and in
//! ascending order within a kind (this is what the writer produces).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::CatalogBuilder;
use crate::catalog::Catalog;
use crate::error::CatalogError;
use crate::ids::{EntityId, TypeId};
use crate::schema::Cardinality;

const HEADER: &str = "#webtable-catalog v1";

/// Percent-escapes the characters that would break the line format.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '%' => out.push_str("%25"),
            '\t' => out.push_str("%09"),
            '\n' => out.push_str("%0A"),
            '|' => out.push_str("%7C"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 > bytes.len() && i + 2 > bytes.len() - 1 {
                return Err("truncated escape".into());
            }
            if i + 2 >= bytes.len() {
                return Err("truncated escape".into());
            }
            let hex = &s[i + 1..i + 3];
            let v = u8::from_str_radix(hex, 16).map_err(|_| format!("bad escape %{hex}"))?;
            out.push(v as char);
            i += 3;
        } else {
            // Multi-byte UTF-8 safe: advance by char.
            let ch = s[i..].chars().next().expect("in-bounds char");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Ok(out)
}

/// Serializes a catalog to a writer in the v1 TSV format.
pub fn write_catalog<W: Write>(cat: &Catalog, w: W) -> Result<(), CatalogError> {
    let mut w = BufWriter::new(w);
    writeln!(w, "{HEADER}")?;
    for t in cat.type_ids() {
        let node = cat.type_node(t);
        let lemmas: Vec<String> = node.lemmas.iter().map(|l| escape(l)).collect();
        writeln!(w, "T\t{}\t{}\t{}", t.raw(), escape(&node.name), lemmas.join("|"))?;
    }
    for t in cat.type_ids() {
        for &p in cat.parents(t) {
            writeln!(w, "TP\t{}\t{}", t.raw(), p.raw())?;
        }
    }
    for e in cat.entity_ids() {
        let ent = cat.entity(e);
        let lemmas: Vec<String> = ent.lemmas.iter().map(|l| escape(l)).collect();
        writeln!(w, "E\t{}\t{}\t{}", e.raw(), escape(&ent.name), lemmas.join("|"))?;
    }
    for e in cat.entity_ids() {
        for &t in &cat.entity(e).direct_types {
            writeln!(w, "ET\t{}\t{}", e.raw(), t.raw())?;
        }
    }
    for b in cat.relation_ids() {
        let rel = cat.relation(b);
        writeln!(
            w,
            "R\t{}\t{}\t{}\t{}\t{}",
            b.raw(),
            escape(&rel.name),
            rel.left_type.raw(),
            rel.right_type.raw(),
            rel.cardinality.as_token()
        )?;
    }
    for b in cat.relation_ids() {
        for &(e1, e2) in &cat.relation(b).tuples {
            writeln!(w, "RT\t{}\t{}\t{}", b.raw(), e1.raw(), e2.raw())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Deserializes a catalog from a reader in the v1 TSV format.
///
/// Schema checking is relaxed on load: a persisted catalog may legitimately
/// be incomplete (missing `∈` links), which is part of what the paper
/// models.
pub fn read_catalog<R: Read>(r: R) -> Result<Catalog, CatalogError> {
    let r = BufReader::new(r);
    let mut b = CatalogBuilder::new();
    b.allow_schema_violations();
    let mut lines = r.lines();
    let first =
        lines.next().ok_or(CatalogError::Parse { line: 1, detail: "empty file".into() })??;
    if first.trim() != HEADER {
        return Err(CatalogError::Parse { line: 1, detail: format!("bad header `{first}`") });
    }
    let parse_err = |line: usize, detail: String| CatalogError::Parse { line, detail };
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        let line = line?;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let parse_u32 = |s: &str| -> Result<u32, CatalogError> {
            s.parse::<u32>().map_err(|_| parse_err(lineno, format!("bad id `{s}`")))
        };
        match fields[0] {
            "T" => {
                if fields.len() != 4 {
                    return Err(parse_err(lineno, "T record needs 4 fields".into()));
                }
                let id = parse_u32(fields[1])?;
                let name = unescape(fields[2]).map_err(|e| parse_err(lineno, e))?;
                let lemmas: Result<Vec<String>, _> = fields[3].split('|').map(unescape).collect();
                let lemmas = lemmas.map_err(|e| parse_err(lineno, e))?;
                let tid = b.add_type(name, &[])?;
                if tid.raw() != id {
                    return Err(parse_err(lineno, format!("non-dense type id {id}")));
                }
                for l in lemmas.iter().skip(1) {
                    b.add_type_lemma(tid, l);
                }
            }
            "TP" => {
                if fields.len() != 3 {
                    return Err(parse_err(lineno, "TP record needs 3 fields".into()));
                }
                b.add_subtype(TypeId(parse_u32(fields[1])?), TypeId(parse_u32(fields[2])?));
            }
            "E" => {
                if fields.len() != 4 {
                    return Err(parse_err(lineno, "E record needs 4 fields".into()));
                }
                let id = parse_u32(fields[1])?;
                let name = unescape(fields[2]).map_err(|e| parse_err(lineno, e))?;
                let lemmas: Result<Vec<String>, _> = fields[3].split('|').map(unescape).collect();
                let lemmas = lemmas.map_err(|e| parse_err(lineno, e))?;
                let eid = b.add_entity(name, &[], &[])?;
                if eid.raw() != id {
                    return Err(parse_err(lineno, format!("non-dense entity id {id}")));
                }
                for l in lemmas.iter().skip(1) {
                    b.add_entity_lemma(eid, l);
                }
            }
            "ET" => {
                if fields.len() != 3 {
                    return Err(parse_err(lineno, "ET record needs 3 fields".into()));
                }
                b.add_instance(EntityId(parse_u32(fields[1])?), TypeId(parse_u32(fields[2])?));
            }
            "R" => {
                if fields.len() != 6 {
                    return Err(parse_err(lineno, "R record needs 6 fields".into()));
                }
                let id = parse_u32(fields[1])?;
                let name = unescape(fields[2]).map_err(|e| parse_err(lineno, e))?;
                let card = Cardinality::from_token(fields[5])
                    .ok_or_else(|| parse_err(lineno, format!("bad cardinality `{}`", fields[5])))?;
                let rid = b.add_relation(
                    name,
                    TypeId(parse_u32(fields[3])?),
                    TypeId(parse_u32(fields[4])?),
                    card,
                )?;
                if rid.raw() != id {
                    return Err(parse_err(lineno, format!("non-dense relation id {id}")));
                }
            }
            "RT" => {
                if fields.len() != 4 {
                    return Err(parse_err(lineno, "RT record needs 4 fields".into()));
                }
                let rid = parse_u32(fields[1])?;
                b.add_tuple(
                    crate::ids::RelationId(rid),
                    EntityId(parse_u32(fields[2])?),
                    EntityId(parse_u32(fields[3])?),
                );
            }
            other => {
                return Err(parse_err(lineno, format!("unknown record kind `{other}`")));
            }
        }
    }
    b.finish()
}

/// Convenience wrapper: serialize to a file path.
pub fn save_catalog<P: AsRef<Path>>(cat: &Catalog, path: P) -> Result<(), CatalogError> {
    let f = std::fs::File::create(path)?;
    write_catalog(cat, f)
}

/// Convenience wrapper: deserialize from a file path.
pub fn load_catalog<P: AsRef<Path>>(path: P) -> Result<Catalog, CatalogError> {
    let f = std::fs::File::open(path)?;
    read_catalog(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CatalogBuilder;

    fn sample() -> Catalog {
        let mut b = CatalogBuilder::new();
        let person = b.add_type("person", &["human", "people"]).unwrap();
        let movie = b.add_type("movie", &["film"]).unwrap();
        let actor = b.add_type("actor", &[]).unwrap();
        b.add_subtype(actor, person);
        let e1 = b.add_entity("Weird|Name\tWith%Specials", &["alias one"], &[actor]).unwrap();
        let e2 = b.add_entity("A Film", &[], &[movie]).unwrap();
        let r = b.add_relation("actedIn", movie, actor, Cardinality::ManyToMany).unwrap();
        b.add_tuple(r, e2, e1);
        b.finish().unwrap()
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "with|pipe", "with\ttab", "with%percent", "mix|%\t|", "ünïcode"] {
            assert_eq!(unescape(&escape(s)).unwrap(), s);
        }
    }

    #[test]
    fn catalog_round_trips_through_tsv() {
        let cat = sample();
        let mut buf = Vec::new();
        write_catalog(&cat, &mut buf).unwrap();
        let cat2 = read_catalog(&buf[..]).unwrap();
        assert_eq!(cat2.num_types(), cat.num_types());
        assert_eq!(cat2.num_entities(), cat.num_entities());
        assert_eq!(cat2.num_relations(), cat.num_relations());
        let e = cat2.entity_named("Weird|Name\tWith%Specials").unwrap();
        assert_eq!(cat2.entity_lemmas(e)[1], "alias one");
        let actor = cat2.type_named("actor").unwrap();
        assert!(cat2.is_instance(e, actor));
        let person = cat2.type_named("person").unwrap();
        assert!(cat2.is_instance(e, person));
        let r = cat2.relation_named("actedIn").unwrap();
        assert_eq!(cat2.relation(r).tuples.len(), 1);
        assert_eq!(cat2.relation(r).cardinality, Cardinality::ManyToMany);
    }

    #[test]
    fn bad_header_is_rejected() {
        let res = read_catalog(&b"not a catalog\n"[..]);
        assert!(matches!(res, Err(CatalogError::Parse { line: 1, .. })));
    }

    #[test]
    fn unknown_record_kind_is_rejected() {
        let data = format!("{HEADER}\nXX\t1\n");
        let res = read_catalog(data.as_bytes());
        assert!(matches!(res, Err(CatalogError::Parse { line: 2, .. })));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let cat = sample();
        let mut buf = Vec::new();
        write_catalog(&cat, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n# trailing comment\n\n");
        assert!(read_catalog(text.as_bytes()).is_ok());
    }
}

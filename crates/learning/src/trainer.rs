//! The structured learner. See the crate docs for the algorithm.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use webtable_catalog::Catalog;
use webtable_core::{AnnotatorConfig, TableCandidates, TableModel, Weights};
use webtable_tables::LabeledTable;
use webtable_text::CandidateIndex;

/// Hyper-parameters for [`train`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Passes over the training set.
    pub epochs: usize,
    /// Learning rate `η`.
    pub learning_rate: f64,
    /// Hamming-loss weight for margin rescaling.
    pub loss_weight: f64,
    /// L2 regularization `λ` (shrinks weights each step).
    pub l2: f64,
    /// Shuffle seed.
    pub seed: u64,
    /// Average iterates (recommended).
    pub average: bool,
    /// Initialize from these weights (defaults to zeros).
    pub init: Option<Weights>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            learning_rate: 0.1,
            loss_weight: 1.0,
            l2: 1e-4,
            seed: 0,
            average: true,
            init: None,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainStats {
    /// Per-epoch count of variables whose loss-augmented prediction
    /// disagreed with gold (the structured "mistake" count).
    pub epoch_violations: Vec<usize>,
    /// Number of tables that contributed at least one known gold label.
    pub usable_tables: usize,
}

impl TrainStats {
    /// True if mistakes did not increase from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_violations.first(), self.epoch_violations.last()) {
            (Some(&a), Some(&b)) => b <= a,
            _ => false,
        }
    }
}

/// Trains weights on labeled tables. Deterministic per config.
pub fn train<I: CandidateIndex + ?Sized>(
    catalog: &Catalog,
    index: &I,
    cfg: &AnnotatorConfig,
    tables: &[LabeledTable],
    tc: &TrainConfig,
) -> (Weights, TrainStats) {
    let mut rng = StdRng::seed_from_u64(tc.seed);
    // Candidate sets do not depend on weights: build once.
    let cands: Vec<TableCandidates> =
        tables.iter().map(|lt| TableCandidates::build(catalog, index, &lt.table, cfg)).collect();

    let mut w = tc.init.clone().unwrap_or_else(Weights::zeros).to_flat();
    let mut w_sum = vec![0.0; w.len()];
    let mut steps = 0usize;
    let mut stats = TrainStats::default();
    let mut usable = vec![false; tables.len()];

    let mut order: Vec<usize> = (0..tables.len()).collect();
    for _epoch in 0..tc.epochs {
        order.shuffle(&mut rng);
        let mut violations = 0usize;
        for &i in &order {
            let lt = &tables[i];
            let weights = Weights::from_flat(&w);
            let mut model = TableModel::build(catalog, cfg, &weights, &lt.table, cands[i].clone());
            let gold = model.gold_assignment(&lt.truth);
            if gold.iter().all(Option::is_none) {
                continue;
            }
            usable[i] = true;
            model.add_hamming_loss(&gold, tc.loss_weight);
            let pred = model.map_assignment();
            // Count mistakes on known variables.
            let mistakes = gold
                .iter()
                .enumerate()
                .filter(|(vi, g)| matches!(g, Some(gl) if pred[*vi] != *gl))
                .count();
            violations += mistakes;
            if mistakes > 0 {
                let gold_full: Vec<usize> = gold.iter().map(|g| g.unwrap_or(0)).collect();
                let phi_gold = model.feature_vector(&gold_full, Some(&gold));
                let phi_pred = model.feature_vector(&pred, Some(&gold));
                for ((wi, pg), pp) in w.iter_mut().zip(&phi_gold).zip(&phi_pred) {
                    *wi = (1.0 - tc.learning_rate * tc.l2) * *wi + tc.learning_rate * (pg - pp);
                }
            }
            if tc.average {
                for (s, x) in w_sum.iter_mut().zip(&w) {
                    *s += x;
                }
                steps += 1;
            }
        }
        stats.epoch_violations.push(violations);
    }
    stats.usable_tables = usable.iter().filter(|&&u| u).count();

    let final_w = if tc.average && steps > 0 {
        let inv = 1.0 / steps as f64;
        w_sum.iter().map(|x| x * inv).collect()
    } else {
        w
    };
    (Weights::from_flat(&final_w), stats)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    use webtable_catalog::{generate_world, WorldConfig};
    use webtable_core::annotate_collective;
    use webtable_eval::entity_accuracy;
    use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

    use super::*;

    use webtable_text::LemmaIndex;

    fn setup() -> (webtable_catalog::World, LemmaIndex) {
        let w = generate_world(&WorldConfig::tiny(5)).unwrap();
        let index = LemmaIndex::build(&w.catalog);
        (w, index)
    }

    #[test]
    fn training_reduces_violations_on_clean_data() {
        let (w, index) = setup();
        let cfg = AnnotatorConfig::default();
        let mut g = TableGenerator::new(&w, NoiseConfig::clean(), TruthMask::full(), 51);
        let train_set = g.gen_corpus(6, 6);
        let tc = TrainConfig { epochs: 4, ..Default::default() };
        let (_weights, stats) = train(&w.catalog, &index, &cfg, &train_set, &tc);
        assert_eq!(stats.epoch_violations.len(), 4);
        assert!(stats.usable_tables > 0);
        assert!(stats.improved(), "violations should not grow: {:?}", stats.epoch_violations);
    }

    #[test]
    fn trained_weights_beat_zero_weights() {
        let (w, index) = setup();
        let cfg = AnnotatorConfig::default();
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 52);
        let train_set = g.gen_corpus(8, 6);
        let test_set = g.gen_corpus(4, 6);
        let tc = TrainConfig { epochs: 4, ..Default::default() };
        let (weights, _) = train(&w.catalog, &index, &cfg, &train_set, &tc);

        let score = |ws: &Weights| {
            let mut acc = webtable_eval::Accuracy::default();
            for lt in &test_set {
                let ann = annotate_collective(&w.catalog, &index, &cfg, ws, &lt.table);
                acc.add(entity_accuracy(&ann.cell_entities, &lt.truth.cell_entities));
            }
            acc
        };
        let trained = score(&weights);
        let zero = score(&Weights::zeros());
        assert!(
            trained.fraction() > zero.fraction(),
            "trained {} must beat zeros {}",
            trained.fraction(),
            zero.fraction()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let (w, index) = setup();
        let cfg = AnnotatorConfig::default();
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 53);
        let train_set = g.gen_corpus(4, 5);
        let tc = TrainConfig { epochs: 2, ..Default::default() };
        let (w1, _) = train(&w.catalog, &index, &cfg, &train_set, &tc);
        let (w2, _) = train(&w.catalog, &index, &cfg, &train_set, &tc);
        assert_eq!(w1, w2);
    }

    #[test]
    fn partial_ground_truth_is_usable() {
        // Wiki-Link-style data (entities only) must still drive updates.
        let (w, index) = setup();
        let cfg = AnnotatorConfig::default();
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::entities_only(), 54);
        let train_set = g.gen_corpus(4, 6);
        let tc = TrainConfig { epochs: 2, ..Default::default() };
        let (weights, stats) = train(&w.catalog, &index, &cfg, &train_set, &tc);
        assert!(stats.usable_tables > 0);
        // w2 (header↔type) cannot be learned from entity-only data when no
        // type variables are known; the f1 block should carry signal.
        let flat = weights.to_flat();
        assert!(flat.iter().any(|&x| x.abs() > 1e-9), "some weights must move");
    }

    #[test]
    fn empty_training_set_returns_init() {
        let (w, index) = setup();
        let cfg = AnnotatorConfig::default();
        let tc = TrainConfig { init: Some(Weights::default()), ..Default::default() };
        let (weights, stats) = train(&w.catalog, &index, &cfg, &[], &tc);
        assert_eq!(weights, Weights::default());
        assert_eq!(stats.usable_tables, 0);
        let _ = HashMap::<(), ()>::new();
    }
}

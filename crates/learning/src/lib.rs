//! # webtable-learning
//!
//! Structured max-margin training of the annotator's weights `w1 … w5`.
//!
//! The paper trains with SVM-struct (Tsochantaridis et al. [22], §4.3 /
//! §6.1.3). We implement the same objective family via the standard
//! primal-subgradient route (equivalent to a structured perceptron with
//! margin rescaling and L2 regularization, with iterate averaging):
//!
//! 1. build the table's factor graph under the current weights;
//! 2. **loss-augmented decoding**: add Hamming loss to every non-gold
//!    label's unary potential and run the same collective BP inference;
//! 3. update `w ← (1 − η·λ)·w + η·(Φ(gold) − Φ(ŷ))`;
//! 4. average iterates for stability.
//!
//! Ground truth may be partial (Figure 5's datasets label different
//! layers) and gold labels may be outside the pruned candidate sets; both
//! are handled by masking: only model components whose variables all carry
//! known, representable gold labels contribute to `Φ`.

pub mod trainer;

pub use trainer::{train, TrainConfig, TrainStats};

//! ASCII table reports in the style of the paper's figures.

/// A simple aligned-column text table builder.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Report {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Report {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: row from display values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Report {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(ncols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as the paper's percent-with-two-decimals style.
pub fn pct(x: f64) -> String {
    format!("{:.2}", x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut r = Report::new("Entity annotation accuracy", &["Dataset", "LCA", "Collective"]);
        r.row(&["Wiki Manual".into(), "59.75".into(), "83.92".into()]);
        r.row(&["Web Manual".into(), "59.68".into(), "81.37".into()]);
        let s = r.render();
        assert!(s.contains("== Entity annotation accuracy =="));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Columns align: "LCA" column starts at the same offset in all rows.
        let pos_header = lines[1].find("LCA").unwrap();
        let pos_row = lines[3].find("59.75").unwrap();
        assert_eq!(pos_header, pos_row);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_is_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["only one".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(59.754), "59.75");
    }
}

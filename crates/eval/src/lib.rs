//! # webtable-eval
//!
//! Evaluation machinery for the `webtable` system: 0/1 entity accuracy
//! with `na` semantics, micro-averaged F1 for set-valued type/relation
//! predictions, mean average precision for search (§6 of the paper), and
//! an ASCII report builder for the experiment harness.

pub mod metrics;
pub mod report;

pub use metrics::{
    average_precision, average_precision_with_base, canonical_relations, entity_accuracy,
    mean_average_precision, point_types_as_sets, relation_f1, type_f1, Accuracy, SetF1,
};
pub use report::{pct, Report};

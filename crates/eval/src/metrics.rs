//! Evaluation metrics (§6.1.1): 0/1 entity accuracy with `na` semantics,
//! set-valued F1 for column types and relations, and mean average
//! precision for the search experiments (§6.2).

use std::collections::HashMap;

use webtable_catalog::{EntityId, RelationId, TypeId};

/// A correct/total accuracy counter (0/1 loss).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Accuracy {
    /// Correct decisions.
    pub correct: usize,
    /// Evaluated decisions (ground truth known).
    pub total: usize,
}

impl Accuracy {
    /// Fraction correct (0 when nothing was evaluated).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Percentage form used in the paper's tables.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }

    /// Accumulates another counter.
    pub fn add(&mut self, other: Accuracy) {
        self.correct += other.correct;
        self.total += other.total;
    }
}

/// Micro-averaged precision/recall/F1 over set-valued predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetF1 {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl SetF1 {
    /// Precision `tp / (tp + fp)`.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Percentage form.
    pub fn percent(&self) -> f64 {
        self.f1() * 100.0
    }

    /// Accumulates another counter.
    pub fn add(&mut self, other: SetF1) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Scores one prediction set against one gold set.
    pub fn observe(&mut self, predicted: &[TypeId], gold: &[TypeId]) {
        for p in predicted {
            if gold.contains(p) {
                self.tp += 1;
            } else {
                self.fp += 1;
            }
        }
        for g in gold {
            if !predicted.contains(g) {
                self.fn_ += 1;
            }
        }
    }
}

/// Scores cell-entity predictions against ground truth. Cells without
/// ground truth are dropped; choosing `na` when truth is an entity (or
/// vice versa) is an error (§6.1.1).
pub fn entity_accuracy(
    pred: &HashMap<(usize, usize), Option<EntityId>>,
    truth: &HashMap<(usize, usize), Option<EntityId>>,
) -> Accuracy {
    let mut acc = Accuracy::default();
    for (key, gold) in truth {
        acc.total += 1;
        if pred.get(key).copied().flatten() == *gold {
            acc.correct += 1;
        }
    }
    acc
}

/// Scores set-valued type predictions (baselines predict sets; the
/// collective annotator predicts singletons — wrap with
/// [`point_types_as_sets`]).
pub fn type_f1(
    pred: &HashMap<usize, Vec<TypeId>>,
    truth: &HashMap<usize, Option<TypeId>>,
) -> SetF1 {
    let empty: Vec<TypeId> = Vec::new();
    let mut f1 = SetF1::default();
    for (col, gold) in truth {
        let p = pred.get(col).unwrap_or(&empty);
        let g: Vec<TypeId> = gold.iter().copied().collect();
        f1.observe(p, &g);
    }
    f1
}

/// Converts point (possibly-`na`) type predictions into singleton sets.
pub fn point_types_as_sets(pred: &HashMap<usize, Option<TypeId>>) -> HashMap<usize, Vec<TypeId>> {
    pred.iter().map(|(&c, &t)| (c, t.into_iter().collect::<Vec<TypeId>>())).collect()
}

/// Canonical form of an oriented relation map: key `(min, max)`, value
/// `Some((B, c1_is_left))` or `None` for na.
pub fn canonical_relations(
    rels: &HashMap<(usize, usize), Option<RelationId>>,
) -> HashMap<(usize, usize), Option<(RelationId, bool)>> {
    let mut out = HashMap::new();
    for (&(a, b), &v) in rels {
        let key = (a.min(b), a.max(b));
        match v {
            Some(rel) => {
                out.insert(key, Some((rel, a <= b)));
            }
            None => {
                out.entry(key).or_insert(None);
            }
        }
    }
    out
}

/// Scores relation predictions with orientation against ground truth.
pub fn relation_f1(
    pred: &HashMap<(usize, usize), Option<RelationId>>,
    truth: &HashMap<(usize, usize), Option<RelationId>>,
) -> SetF1 {
    let pred = canonical_relations(pred);
    let truth = canonical_relations(truth);
    let mut f1 = SetF1::default();
    for (key, gold) in &truth {
        let p = pred.get(key).copied().flatten();
        match (gold, p) {
            (Some(g), Some(p)) if *g == p => f1.tp += 1,
            (Some(_), Some(_)) => {
                f1.fp += 1;
                f1.fn_ += 1;
            }
            (Some(_), None) => f1.fn_ += 1,
            (None, Some(_)) => f1.fp += 1,
            (None, None) => {}
        }
    }
    f1
}

/// Average precision of a ranked relevance list, normalized by the number
/// of relevant items *in the list*.
pub fn average_precision(relevant: &[bool]) -> f64 {
    let total = relevant.iter().filter(|&&r| r).count();
    average_precision_with_base(relevant, total)
}

/// Average precision with an explicit recall base: the total number of
/// relevant items in the collection (missed answers count against the
/// score). This is the standard IR formulation used for the paper's MAP
/// numbers (§6.2).
pub fn average_precision_with_base(relevant: &[bool], total_relevant: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &r) in relevant.iter().enumerate() {
        if r {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// Mean average precision over queries. Queries with no relevant results
/// anywhere contribute 0 (strict convention).
pub fn mean_average_precision(per_query: &[Vec<bool>]) -> f64 {
    if per_query.is_empty() {
        return 0.0;
    }
    per_query.iter().map(|q| average_precision(q)).sum::<f64>() / per_query.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_accuracy_counts_na_errors() {
        let mut truth = HashMap::new();
        truth.insert((0, 0), Some(EntityId(1)));
        truth.insert((0, 1), None); // truth says na
        truth.insert((1, 0), Some(EntityId(2)));
        let mut pred = HashMap::new();
        pred.insert((0, 0), Some(EntityId(1))); // correct
        pred.insert((0, 1), Some(EntityId(9))); // wrong: should be na
        pred.insert((1, 0), None); // wrong: na instead of entity
        let acc = entity_accuracy(&pred, &truth);
        assert_eq!(acc.correct, 1);
        assert_eq!(acc.total, 3);
        assert!((acc.percent() - 33.333).abs() < 0.01);
    }

    #[test]
    fn missing_predictions_count_as_na() {
        let mut truth = HashMap::new();
        truth.insert((0, 0), Some(EntityId(1)));
        let pred = HashMap::new();
        let acc = entity_accuracy(&pred, &truth);
        assert_eq!(acc.correct, 0);
        assert_eq!(acc.total, 1);
    }

    #[test]
    fn type_f1_scores_sets() {
        let mut truth = HashMap::new();
        truth.insert(0, Some(TypeId(1)));
        truth.insert(1, Some(TypeId(2)));
        truth.insert(2, None);
        let mut pred = HashMap::new();
        pred.insert(0, vec![TypeId(1), TypeId(9)]); // tp + fp
        pred.insert(1, vec![]); // fn
        pred.insert(2, vec![TypeId(3)]); // fp (truth is na)
        let f = type_f1(&pred, &truth);
        assert_eq!((f.tp, f.fp, f.fn_), (1, 2, 1));
        assert!((f.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((f.recall() - 0.5).abs() < 1e-12);
        assert!(f.f1() > 0.0 && f.f1() < 1.0);
    }

    #[test]
    fn relation_f1_respects_orientation() {
        let mut truth = HashMap::new();
        truth.insert((2, 0), Some(RelationId(7))); // col 2 is left
        let mut pred_ok = HashMap::new();
        pred_ok.insert((2, 0), Some(RelationId(7)));
        assert_eq!(relation_f1(&pred_ok, &truth).tp, 1);
        // Same relation, wrong orientation = wrong.
        let mut pred_flip = HashMap::new();
        pred_flip.insert((0, 2), Some(RelationId(7)));
        let f = relation_f1(&pred_flip, &truth);
        assert_eq!(f.tp, 0);
        assert_eq!(f.fp, 1);
        assert_eq!(f.fn_, 1);
    }

    #[test]
    fn relation_f1_handles_na() {
        let mut truth = HashMap::new();
        truth.insert((0, 1), None);
        truth.insert((1, 2), Some(RelationId(3)));
        let mut pred = HashMap::new();
        pred.insert((0, 1), Some(RelationId(5))); // fp
        pred.insert((1, 2), None); // fn
        let f = relation_f1(&pred, &truth);
        assert_eq!((f.tp, f.fp, f.fn_), (0, 1, 1));
    }

    #[test]
    fn average_precision_known_values() {
        // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        let ap = average_precision(&[true, false, true]);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert_eq!(average_precision(&[false, false]), 0.0);
        assert_eq!(average_precision(&[]), 0.0);
        assert!((average_precision(&[true]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn map_averages_queries() {
        let m = mean_average_precision(&[vec![true], vec![false, true]]);
        assert!((m - (1.0 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    fn point_types_wrap_as_sets() {
        let mut pred = HashMap::new();
        pred.insert(0, Some(TypeId(4)));
        pred.insert(1, None);
        let sets = point_types_as_sets(&pred);
        assert_eq!(sets[&0], vec![TypeId(4)]);
        assert!(sets[&1].is_empty());
    }
}

//! Search workload generation and MAP evaluation (§6.2).
//!
//! The paper samples 40 `E2` values per relation from YAGO, queries the
//! annotated Web-table corpus, and scores the ranked entity lists against
//! DBPedia triples. Here the *oracle* catalog plays DBPedia's role: the
//! relevance set for a query is `{E1 : R(E1, E2)}` in the oracle.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use webtable_catalog::{Catalog, EntityId, RelationId, World};
use webtable_eval::average_precision_with_base;

use crate::query::{AnswerKey, EntityQuery, RankedAnswer};

/// A query workload: one entry per relation, each with sampled queries.
#[derive(Debug, Clone)]
pub struct Workload {
    /// `(relation, queries)` in generation order.
    pub per_relation: Vec<(RelationId, Vec<EntityQuery>)>,
}

/// Samples up to `per_relation` queries for each given relation: `E2`
/// values are drawn (deterministically per seed) from entities that
/// participate on the relation's right side in the oracle.
pub fn build_workload(
    world: &World,
    relations: &[RelationId],
    per_relation: usize,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(relations.len());
    for &b in relations {
        let rel = world.oracle.relation(b);
        let mut rights: Vec<EntityId> = rel.by_right.keys().copied().collect();
        rights.sort_unstable();
        rights.shuffle(&mut rng);
        rights.truncate(per_relation);
        let queries = rights
            .into_iter()
            .map(|e2| EntityQuery { relation: b, t1: rel.left_type, t2: rel.right_type, e2 })
            .collect();
        out.push((b, queries));
    }
    Workload { per_relation: out }
}

/// Relevance set for a query: the oracle's left-side partners of `E2`.
pub fn relevant_entities(oracle: &Catalog, q: &EntityQuery) -> Vec<EntityId> {
    oracle.relation(q.relation).lefts_of(q.e2).to_vec()
}

/// Judges a ranked answer list against the oracle: an entity answer is
/// relevant iff it is in the relevance set; a text answer is relevant iff
/// it equals (case-insensitively) some lemma of a relevant entity.
pub fn judge(oracle: &Catalog, q: &EntityQuery, answers: &[RankedAnswer]) -> (Vec<bool>, usize) {
    let truth = relevant_entities(oracle, q);
    let truth_lemmas: Vec<String> = truth
        .iter()
        .flat_map(|&e| oracle.entity_lemmas(e).iter().map(|l| l.trim().to_lowercase()))
        .collect();
    let mut seen_truth: Vec<bool> = vec![false; truth.len()];
    let rel_flags: Vec<bool> = answers
        .iter()
        .map(|a| match &a.key {
            AnswerKey::Entity(e) => match truth.iter().position(|t| t == e) {
                Some(i) if !seen_truth[i] => {
                    seen_truth[i] = true;
                    true
                }
                // Duplicate hit on the same truth entity: not newly relevant.
                Some(_) => false,
                None => false,
            },
            AnswerKey::Text(s) => {
                // Find a not-yet-credited truth entity with a matching lemma.
                let hit = truth.iter().enumerate().find(|&(i, &e)| {
                    !seen_truth[i]
                        && oracle.entity_lemmas(e).iter().any(|l| l.trim().to_lowercase() == *s)
                });
                let _ = &truth_lemmas;
                match hit {
                    Some((i, _)) => {
                        seen_truth[i] = true;
                        true
                    }
                    None => false,
                }
            }
            // Table/column answers never occur in entity workloads.
            _ => false,
        })
        .collect();
    (rel_flags, truth.len())
}

/// Average precision of one judged query against the oracle recall base.
pub fn query_ap(oracle: &Catalog, q: &EntityQuery, answers: &[RankedAnswer]) -> f64 {
    let (flags, base) = judge(oracle, q, answers);
    average_precision_with_base(&flags, base)
}

/// Mean average precision over a set of queries with a shared search
/// function.
pub fn map_over_queries<F>(oracle: &Catalog, queries: &[EntityQuery], mut search: F) -> f64
where
    F: FnMut(&EntityQuery) -> Vec<RankedAnswer>,
{
    if queries.is_empty() {
        return 0.0;
    }
    let total: f64 = queries.iter().map(|q| query_ap(oracle, q, &search(q))).sum();
    total / queries.len() as f64
}

#[cfg(test)]
mod tests {
    use webtable_catalog::{generate_world, WorldConfig};

    use super::*;

    #[test]
    fn workload_is_deterministic_and_respects_schema() {
        let w = generate_world(&WorldConfig::tiny(7)).unwrap();
        let rels = w.relations.figure13();
        let wl1 = build_workload(&w, &rels, 5, 99);
        let wl2 = build_workload(&w, &rels, 5, 99);
        assert_eq!(wl1.per_relation.len(), 5);
        for ((b1, q1), (b2, q2)) in wl1.per_relation.iter().zip(&wl2.per_relation) {
            assert_eq!(b1, b2);
            assert_eq!(q1, q2);
        }
        for (b, queries) in &wl1.per_relation {
            let rel = w.oracle.relation(*b);
            for q in queries {
                assert!(w.oracle.is_instance(q.e2, rel.right_type));
                assert!(!relevant_entities(&w.oracle, q).is_empty());
            }
        }
    }

    #[test]
    fn judge_scores_entity_and_text_answers() {
        let w = generate_world(&WorldConfig::tiny(7)).unwrap();
        let rel = w.oracle.relation(w.relations.directed);
        let (e1, e2) = rel.tuples[0];
        let q = EntityQuery {
            relation: w.relations.directed,
            t1: w.types.movie,
            t2: w.types.director,
            e2,
        };
        let lemma = w.oracle.entity_lemmas(e1)[0].to_lowercase();
        let answers = vec![
            RankedAnswer { key: AnswerKey::Entity(e1), score: 2.0 },
            RankedAnswer { key: AnswerKey::Text("junk".into()), score: 1.5 },
            RankedAnswer { key: AnswerKey::Text(lemma), score: 1.0 },
        ];
        let (flags, base) = judge(&w.oracle, &q, &answers);
        assert!(flags[0], "entity answer is relevant");
        assert!(!flags[1]);
        assert!(!flags[2], "text duplicate of an already-credited entity doesn't double count");
        assert!(base >= 1);
        let ap = query_ap(&w.oracle, &q, &answers);
        assert!(ap > 0.0 && ap <= 1.0);
    }

    #[test]
    fn perfect_ranking_gets_ap_one() {
        let w = generate_world(&WorldConfig::tiny(7)).unwrap();
        let rel = w.oracle.relation(w.relations.directed);
        // Find an e2 and all its movies.
        let (_, e2) = rel.tuples[0];
        let q = EntityQuery {
            relation: w.relations.directed,
            t1: w.types.movie,
            t2: w.types.director,
            e2,
        };
        let truth = relevant_entities(&w.oracle, &q);
        let answers: Vec<RankedAnswer> =
            truth.iter().map(|&e| RankedAnswer { key: AnswerKey::Entity(e), score: 1.0 }).collect();
        let ap = query_ap(&w.oracle, &q, &answers);
        assert!((ap - 1.0).abs() < 1e-12);
    }

    #[test]
    fn map_over_queries_averages() {
        let w = generate_world(&WorldConfig::tiny(7)).unwrap();
        let rels = [w.relations.directed];
        let wl = build_workload(&w, &rels, 3, 1);
        let queries = &wl.per_relation[0].1;
        // Empty search → MAP 0.
        let m = map_over_queries(&w.oracle, queries, |_| Vec::new());
        assert_eq!(m, 0.0);
    }
}

//! Keyword table retrieval: rank whole annotated tables for a keyword
//! query (the table-retrieval task of the Zhang & Balog survey, built on
//! the annotations of §4).
//!
//! [`TableIndex`] is a table-level inverted index beside the cell-level
//! [`crate::SearchIndex`]: one document per corpus table, whose token
//! stream is the table's context, headers, cell text, **and annotation
//! labels** (type names of column annotations, relation names of pair
//! annotations, canonical entity names of cell annotations — the signal
//! the annotator added to the raw strings). Postings are stored in the
//! same CSR shape as `crates/text` (one offset table, flat value/weight
//! arrays) with a per-token upper bound beside each row, so the query
//! loop can stop admitting new candidate tables WAND-style once the
//! remaining upper-bound mass cannot lift an unseen table into the
//! top-k.
//!
//! Scoring is IDF-weighted cosine with a binary query vector: a stored
//! posting weight is `(1 + ln tf) · idf(token) / ‖table‖`, and a table's
//! score for a query is the sum of its weights over the distinct query
//! tokens. Ranking is deterministic: score descending, external table id
//! ascending on ties.

use std::collections::HashMap;

use webtable_catalog::Catalog;
use webtable_text::{tokenize, Vocab};

use crate::corpus::AnnotatedCorpus;
use crate::query::{rank_bounded, AnswerKey, RankedAnswer};

/// The table-level inverted index. Immutable after construction; rebuilt
/// with its owning [`crate::SearchEngine`] on every generation load, so
/// it participates in snapshot swaps and `grow` deltas for free.
#[derive(Debug)]
pub struct TableIndex {
    vocab: Vocab,
    /// token id → row bounds into `tables`/`weights` (CSR offsets).
    offsets: Vec<u32>,
    /// Flat posting array: corpus table positions, ascending per row.
    tables: Vec<u32>,
    /// Parallel normalized `tf·idf` weights.
    weights: Vec<f64>,
    /// token id → max weight of its row (the WAND-style admission bound).
    ub: Vec<f64>,
    /// corpus position → external [`webtable_tables::TableId`] value.
    keys: Vec<u64>,
}

impl TableIndex {
    /// Builds the index over an annotated corpus. The catalog resolves
    /// annotation ids to their label strings; annotations whose ids fall
    /// outside the catalog (foreign annotations) contribute no label
    /// tokens but never fail the build.
    pub fn build(corpus: &AnnotatedCorpus, catalog: &Catalog) -> TableIndex {
        let mut vocab = Vocab::new();
        let n_tables = corpus.tables.len();
        // Per-table term frequencies, then (token, tf) rows sorted by
        // token id — the deterministic document order everything below
        // derives from.
        let mut docs: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n_tables);
        let mut keys = Vec::with_capacity(n_tables);
        for (ti, table) in corpus.tables.iter().enumerate() {
            let mut tf: HashMap<u32, u32> = HashMap::new();
            let mut add = |vocab: &mut Vocab, text: &str| {
                for tok in tokenize(text) {
                    *tf.entry(vocab.intern(&tok)).or_insert(0) += 1;
                }
            };
            add(&mut vocab, &table.context);
            for header in table.headers.iter().flatten() {
                add(&mut vocab, header);
            }
            for row in &table.rows {
                for cell in row {
                    add(&mut vocab, cell);
                }
            }
            let ann = &corpus.annotations[ti];
            for ty in ann.column_types.values().flatten() {
                if ty.index() < catalog.num_types() {
                    add(&mut vocab, catalog.type_name(*ty));
                }
            }
            for rel in ann.relations.values().flatten() {
                if rel.index() < catalog.num_relations() {
                    add(&mut vocab, catalog.relation_name(*rel));
                }
            }
            for e in ann.cell_entities.values().flatten() {
                if e.index() < catalog.num_entities() {
                    add(&mut vocab, catalog.entity_name(*e));
                }
            }
            let mut row: Vec<(u32, u32)> = tf.into_iter().collect();
            row.sort_unstable();
            docs.push(row);
            keys.push(table.id.0);
        }

        // Document frequencies → smoothed IDF (the `crates/text` formula).
        let mut df = vec![0u32; vocab.len()];
        for doc in &docs {
            for &(tok, _) in doc {
                df[tok as usize] += 1;
            }
        }
        let idf: Vec<f64> =
            df.iter().map(|&d| (1.0 + n_tables as f64 / (1.0 + d as f64)).ln()).collect();

        // L2 norm per table over its tf·idf weights.
        let norms: Vec<f64> = docs
            .iter()
            .map(|doc| {
                let sq: f64 = doc
                    .iter()
                    .map(|&(tok, tf)| {
                        let w = (1.0 + (tf as f64).ln()) * idf[tok as usize];
                        w * w
                    })
                    .sum();
                sq.sqrt().max(f64::MIN_POSITIVE)
            })
            .collect();

        // Two-pass CSR fill: tables ascend within each token row because
        // the fill walks documents in corpus order.
        let mut counts = vec![0u32; vocab.len()];
        for doc in &docs {
            for &(tok, _) in doc {
                counts[tok as usize] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(vocab.len() + 1);
        offsets.push(0u32);
        let mut total = 0u32;
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..vocab.len()].to_vec();
        let mut tables = vec![0u32; total as usize];
        let mut weights = vec![0.0f64; total as usize];
        for (ti, doc) in docs.iter().enumerate() {
            for &(tok, tf) in doc {
                let slot = &mut cursor[tok as usize];
                let w = (1.0 + (tf as f64).ln()) * idf[tok as usize] / norms[ti];
                tables[*slot as usize] = ti as u32;
                weights[*slot as usize] = w;
                *slot += 1;
            }
        }
        let ub: Vec<f64> = (0..vocab.len())
            .map(|tok| {
                let (s, e) = (offsets[tok] as usize, offsets[tok + 1] as usize);
                weights[s..e].iter().fold(0.0f64, |m, &w| m.max(w))
            })
            .collect();

        TableIndex { vocab, offsets, tables, weights, ub, keys }
    }

    /// Number of indexed tables.
    pub fn num_tables(&self) -> usize {
        self.keys.len()
    }

    /// Ranks tables for a keyword query: top-`k` [`AnswerKey::Table`]
    /// answers, score descending, external table id ascending on ties.
    ///
    /// Query tokens are deduplicated; tokens outside the vocabulary are
    /// dropped (they match no table). Terms are processed in descending
    /// upper-bound order, and once the accumulated candidate set already
    /// holds `k` tables whose partial scores all exceed the remaining
    /// upper-bound mass, tables not yet seen are no longer admitted —
    /// they provably cannot reach the top-k (partial scores only grow).
    pub fn search(&self, keywords: &str, k: usize) -> Vec<RankedAnswer> {
        if k == 0 {
            return Vec::new();
        }
        let mut toks: Vec<u32> =
            tokenize(keywords).iter().filter_map(|t| self.vocab.get(t)).collect();
        toks.sort_unstable();
        toks.dedup();
        // (upper bound, token): descending bound, ascending token on ties.
        let mut terms: Vec<(f64, u32)> =
            toks.into_iter().map(|t| (self.ub[t as usize], t)).collect();
        terms.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut remaining: f64 = terms.iter().map(|t| t.0).sum();
        let mut scores: HashMap<u32, f64> = HashMap::new();
        let mut admit_new = true;
        for &(bound, tok) in &terms {
            if admit_new && scores.len() >= k {
                // k-th largest partial score; a fresh table can gain at
                // most `remaining` (this term included).
                let mut partial: Vec<f64> = scores.values().copied().collect();
                let idx = partial.len() - k;
                partial.select_nth_unstable_by(idx, f64::total_cmp);
                if partial[idx] > remaining {
                    admit_new = false;
                }
            }
            remaining -= bound;
            let (s, e) =
                (self.offsets[tok as usize] as usize, self.offsets[tok as usize + 1] as usize);
            for i in s..e {
                let ti = self.tables[i];
                if let Some(acc) = scores.get_mut(&ti) {
                    *acc += self.weights[i];
                } else if admit_new {
                    scores.insert(ti, self.weights[i]);
                }
            }
        }
        rank_bounded(
            scores.into_iter().map(|(ti, s)| (AnswerKey::Table(self.keys[ti as usize]), s)),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use webtable_catalog::CatalogBuilder;
    use webtable_core::TableAnnotation;
    use webtable_tables::{Table, TableId};

    use super::*;

    fn corpus() -> (AnnotatedCorpus, Catalog) {
        let mut b = CatalogBuilder::new();
        let movie = b.add_type("movie", &[]).unwrap();
        let director = b.add_type("director", &[]).unwrap();
        let heat = b.add_entity("Heat", &[], &[movie]).unwrap();
        let mann = b.add_entity("Michael Mann", &[], &[director]).unwrap();
        let cat = b.finish().unwrap();

        let t0 = Table::new(
            TableId(10),
            "films and their directors",
            vec![Some("Film".into()), Some("Director".into())],
            vec![vec!["Heat".into(), "Mann".into()]],
        );
        let mut a0 = TableAnnotation::default();
        a0.column_types.insert(0, Some(movie));
        a0.column_types.insert(1, Some(director));
        a0.cell_entities.insert((0, 0), Some(heat));
        a0.cell_entities.insert((0, 1), Some(mann));
        let t1 = Table::new(
            TableId(11),
            "european capital cities",
            vec![Some("Country".into()), Some("Capital".into())],
            vec![vec!["France".into(), "Paris".into()]],
        );
        let a1 = TableAnnotation::default();
        (AnnotatedCorpus::from_parts(vec![t0, t1], vec![a0, a1]), cat)
    }

    #[test]
    fn keyword_query_ranks_the_matching_table_first() {
        let (corpus, cat) = corpus();
        let idx = TableIndex::build(&corpus, &cat);
        assert_eq!(idx.num_tables(), 2);
        let res = idx.search("director film", 5);
        assert!(!res.is_empty());
        assert_eq!(res[0].key, AnswerKey::Table(10));
        // The capitals table never mentions those tokens.
        assert!(res.iter().all(|a| a.key != AnswerKey::Table(11)));
    }

    #[test]
    fn annotation_labels_are_searchable() {
        let (corpus, cat) = corpus();
        let idx = TableIndex::build(&corpus, &cat);
        // "michael" only appears via the entity annotation's canonical
        // name (the cell says just "Mann").
        let res = idx.search("michael", 5);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].key, AnswerKey::Table(10));
    }

    #[test]
    fn search_is_deterministic_and_bounded() {
        let (corpus, cat) = corpus();
        let idx = TableIndex::build(&corpus, &cat);
        let a = idx.search("paris film capital director", 1);
        let b = idx.search("paris film capital director", 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert!(idx.search("film", 0).is_empty());
        assert!(idx.search("zzz-unknown-token", 5).is_empty());
    }
}

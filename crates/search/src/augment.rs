//! Table augmentation: row population, column population, and
//! entity-relationship queries over the annotated corpus.
//!
//! These are the augmentation tasks the Zhang & Balog survey names as the
//! downstream payoff of table annotation. All three processors run over
//! the cell-level [`SearchIndex`] plus the per-table annotations — no
//! extra index is needed, because `cells_of_entity` / `pairs_of_relation`
//! already give the entity→cell and relation→column-pair maps.
//!
//! * [`populate_rows`] — given seed entities from a partial table's key
//!   column, find corpus columns containing the seeds and vote for the
//!   *other* entities those columns contain, boosting candidates that are
//!   instances of the seed columns' dominant annotated type.
//! * [`populate_columns`] — given the same seeds, find tables whose
//!   columns contain them and vote for those tables' *other* columns,
//!   keyed by normalized header label plus annotated type.
//! * [`related_search`] — answer "what is related to E via R?" directly
//!   over relation-annotated column pairs, in either orientation.

use std::collections::{HashMap, HashSet};

use webtable_catalog::{Catalog, EntityId, RelationId, TypeId};
use webtable_text::normalize;

use crate::corpus::AnnotatedCorpus;
use crate::index::SearchIndex;
use crate::query::{rank_bounded, AnswerKey, RankedAnswer};

/// Multiplier applied to a row-population candidate's co-occurrence score
/// when the candidate is an instance of the seed columns' dominant type.
const TYPE_COMPAT_BOOST: f64 = 1.5;

/// Row population: rank candidate entities to extend a key column seeded
/// with `seeds`. Candidates are entities co-occurring with seeds in corpus
/// columns, scored by the fraction of seeds each supporting column holds,
/// then boosted by [`TYPE_COMPAT_BOOST`] when the candidate is an instance
/// of the dominant column-type annotation across the seed columns.
///
/// Returns the top `k` as [`AnswerKey::Entity`] answers (score desc,
/// entity id asc). Seeds never appear among the answers.
pub fn populate_rows(
    catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    seeds: &[EntityId],
    k: usize,
) -> Vec<RankedAnswer> {
    if k == 0 || seeds.is_empty() {
        return Vec::new();
    }
    let seed_set: HashSet<EntityId> = seeds.iter().copied().collect();

    // Columns holding at least one seed, with the number of *distinct*
    // seeds each holds (the column's support).
    let mut seed_cols: HashMap<(u32, u16), HashSet<EntityId>> = HashMap::new();
    for &seed in &seed_set {
        for &(t, _r, c) in index.cells_of_entity(seed) {
            seed_cols.entry((t, c)).or_default().insert(seed);
        }
    }
    if seed_cols.is_empty() {
        return Vec::new();
    }

    // Dominant annotated type over the seed columns (most supporting
    // columns; smaller TypeId on ties, for determinism).
    let mut type_votes: HashMap<TypeId, u32> = HashMap::new();
    for (t, c) in seed_cols.keys() {
        let ann = &corpus.annotations[*t as usize];
        if let Some(Some(ty)) = ann.column_types.get(&(*c as usize)) {
            *type_votes.entry(*ty).or_insert(0) += 1;
        }
    }
    let dominant: Option<TypeId> =
        type_votes.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(ty, _)| ty);

    // Vote: every non-seed entity in a seed column earns that column's
    // support fraction.
    let n_seeds = seed_set.len() as f64;
    let mut evidence: HashMap<EntityId, f64> = HashMap::new();
    for ((t, c), hits) in &seed_cols {
        let support = hits.len() as f64 / n_seeds;
        let table = &corpus.tables[*t as usize];
        let ann = &corpus.annotations[*t as usize];
        for r in 0..table.num_rows() {
            let Some(Some(e)) = ann.cell_entities.get(&(r, *c as usize)) else { continue };
            if !seed_set.contains(e) {
                *evidence.entry(*e).or_insert(0.0) += support;
            }
        }
    }

    rank_bounded(
        evidence.into_iter().map(|(e, mut score)| {
            if let Some(ty) = dominant {
                if ty.index() < catalog.num_types()
                    && e.index() < catalog.num_entities()
                    && catalog.is_instance(e, ty)
                {
                    score *= TYPE_COMPAT_BOOST;
                }
            }
            (AnswerKey::Entity(e), score)
        }),
        k,
    )
}

/// Column population: rank candidate new columns for a table whose key
/// column holds `seeds`. Tables containing seeds vote for their *other*
/// columns; each suggestion is keyed by normalized header label (falling
/// back to the annotated type's name when the column is headerless) plus
/// the column-type annotation.
///
/// Returns the top `k` as [`AnswerKey::Column`] answers.
pub fn populate_columns(
    catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    seeds: &[EntityId],
    k: usize,
) -> Vec<RankedAnswer> {
    if k == 0 || seeds.is_empty() {
        return Vec::new();
    }
    let seed_set: HashSet<EntityId> = seeds.iter().copied().collect();

    // Distinct seeds per (table, column).
    let mut seed_cols: HashMap<(u32, u16), HashSet<EntityId>> = HashMap::new();
    for &seed in &seed_set {
        for &(t, _r, c) in index.cells_of_entity(seed) {
            seed_cols.entry((t, c)).or_default().insert(seed);
        }
    }

    let n_seeds = seed_set.len() as f64;
    let mut evidence: HashMap<AnswerKey, f64> = HashMap::new();
    for ((t, c), hits) in &seed_cols {
        let support = hits.len() as f64 / n_seeds;
        let table = &corpus.tables[*t as usize];
        let ann = &corpus.annotations[*t as usize];
        for c2 in 0..table.num_cols() {
            if c2 == *c as usize {
                continue;
            }
            let ty = ann.column_types.get(&c2).copied().flatten().filter(|ty| {
                // Foreign annotations (ids outside this catalog) are kept
                // out of suggestions — their names can't be resolved.
                ty.index() < catalog.num_types()
            });
            let label = match table.header(c2) {
                Some(h) => normalize(h),
                None => match ty {
                    Some(ty) => normalize(catalog.type_name(ty)),
                    None => continue, // headerless and untyped: nothing to suggest
                },
            };
            if label.is_empty() {
                continue;
            }
            *evidence.entry(AnswerKey::Column { label, ty }).or_insert(0.0) += support;
        }
    }
    rank_bounded(evidence, k)
}

/// Entity-relationship query: "what is related to `entity` via
/// `relation`?" answered over relation-annotated column pairs, in both
/// orientations. Evidence mirrors the typed processor: one vote per
/// supporting row, weighted by the answer cell's annotation confidence.
///
/// Returns the top `k` answers — [`AnswerKey::Entity`] when the answer
/// cell carries an entity annotation, [`AnswerKey::Text`] otherwise.
pub fn related_search(
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    entity: EntityId,
    relation: RelationId,
    k: usize,
) -> Vec<RankedAnswer> {
    if k == 0 {
        return Vec::new();
    }
    // Rows where some cell is annotated with the query entity, per
    // (table, column).
    let e_cells: HashMap<(u32, u16), Vec<u32>> = {
        let mut m: HashMap<(u32, u16), Vec<u32>> = HashMap::new();
        for &(t, r, c) in index.cells_of_entity(entity) {
            m.entry((t, c)).or_default().push(r);
        }
        m
    };

    let mut evidence: HashMap<AnswerKey, f64> = HashMap::new();
    let mut collect = |given: (u32, u16), answer_col: u16| {
        let Some(rows) = e_cells.get(&given) else { return };
        let t = given.0;
        let table = &corpus.tables[t as usize];
        let ann = &corpus.annotations[t as usize];
        for &r in rows {
            let key = (r as usize, answer_col as usize);
            let answer = match ann.cell_entities.get(&key).copied().flatten() {
                Some(e) => AnswerKey::Entity(e),
                None => {
                    let text = table.cell(r as usize, answer_col as usize).trim().to_lowercase();
                    if text.is_empty() {
                        continue;
                    }
                    AnswerKey::Text(text)
                }
            };
            let conf = ann.cell_confidence.get(&key).copied().unwrap_or(0.0);
            *evidence.entry(answer).or_insert(0.0) += 1.0 + conf.min(2.0);
        }
    };
    for &(t, c_left, c_right) in index.pairs_of_relation(relation) {
        // entity on the left → answers from the right column, and vice
        // versa ("related to" is asked in either direction).
        collect((t, c_left), c_right);
        collect((t, c_right), c_left);
    }
    rank_bounded(evidence, k)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use webtable_catalog::{generate_world, WorldConfig};
    use webtable_core::Annotator;
    use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

    use super::*;

    fn searchable_world() -> (webtable_catalog::World, AnnotatedCorpus, SearchIndex) {
        let w = generate_world(&WorldConfig::tiny(5)).unwrap();
        let annotator = Annotator::new(Arc::clone(&w.catalog));
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 61);
        let mut tables = Vec::new();
        for _ in 0..6 {
            tables.push(g.gen_table_for_relation(w.relations.directed, 10).table);
        }
        let annotations =
            annotator.run(&webtable_core::AnnotateRequest::new(&tables).workers(2)).annotations;
        let corpus = AnnotatedCorpus::from_parts(tables, annotations);
        let index = SearchIndex::build(&corpus, &w.catalog);
        (w, corpus, index)
    }

    /// Seed entities: movies that actually appear (annotated) in the corpus.
    fn annotated_movies(w: &webtable_catalog::World, index: &SearchIndex) -> Vec<EntityId> {
        let rel = w.oracle.relation(w.relations.directed);
        let mut seen: Vec<EntityId> = rel
            .tuples
            .iter()
            .map(|&(m, _)| m)
            .filter(|&m| !index.cells_of_entity(m).is_empty())
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen
    }

    #[test]
    fn row_population_suggests_unseen_movies() {
        let (w, corpus, index) = searchable_world();
        let movies = annotated_movies(&w, &index);
        assert!(movies.len() >= 3, "world too small for the test: {movies:?}");
        let seeds = &movies[..2];
        let res = populate_rows(&w.catalog, &index, &corpus, seeds, 10);
        assert!(!res.is_empty());
        for a in &res {
            let AnswerKey::Entity(e) = a.key else { panic!("row answers are entities") };
            assert!(!seeds.contains(&e), "seeds must not be suggested back");
        }
        // Deterministic.
        assert_eq!(res, populate_rows(&w.catalog, &index, &corpus, seeds, 10));
        assert!(populate_rows(&w.catalog, &index, &corpus, &[], 10).is_empty());
        assert!(populate_rows(&w.catalog, &index, &corpus, seeds, 0).is_empty());
    }

    #[test]
    fn column_population_suggests_the_director_column() {
        let (w, corpus, index) = searchable_world();
        let movies = annotated_movies(&w, &index);
        let seeds = &movies[..2.min(movies.len())];
        let res = populate_columns(&w.catalog, &index, &corpus, seeds, 10);
        assert!(!res.is_empty());
        // Somewhere in the suggestions there should be a director-typed
        // column (the corpus is all movie→director tables).
        let director = w.types.director;
        assert!(
            res.iter()
                .any(|a| matches!(a.key, AnswerKey::Column { ty: Some(t), .. } if t == director)),
            "expected a director column suggestion: {res:?}"
        );
        assert_eq!(res, populate_columns(&w.catalog, &index, &corpus, seeds, 10));
    }

    #[test]
    fn related_search_finds_the_director() {
        let (w, corpus, index) = searchable_world();
        let movies = annotated_movies(&w, &index);
        let rel = w.oracle.relation(w.relations.directed);
        let movie = movies[0];
        let res = related_search(&index, &corpus, movie, w.relations.directed, 10);
        assert!(!res.is_empty());
        // The oracle director should rank among the answers.
        let golds: Vec<EntityId> = rel.rights_of(movie).to_vec();
        assert!(
            res.iter().any(|a| matches!(a.key, AnswerKey::Entity(e) if golds.contains(&e))),
            "gold director missing from {res:?}"
        );
        assert_eq!(res, related_search(&index, &corpus, movie, w.relations.directed, 10));
        assert!(related_search(&index, &corpus, movie, w.relations.directed, 0).is_empty());
    }
}

//! An annotated table corpus: the searchable artifact.

use webtable_core::{Annotator, TableAnnotation};
use webtable_tables::Table;

/// Tables plus their (machine-produced) annotations, aligned by index.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedCorpus {
    /// The source tables.
    pub tables: Vec<Table>,
    /// One annotation per table.
    pub annotations: Vec<TableAnnotation>,
}

impl AnnotatedCorpus {
    /// Wraps pre-computed annotations.
    pub fn from_parts(tables: Vec<Table>, annotations: Vec<TableAnnotation>) -> AnnotatedCorpus {
        assert_eq!(tables.len(), annotations.len(), "misaligned corpus");
        AnnotatedCorpus { tables, annotations }
    }

    /// Annotates a batch of tables with the given annotator (parallel).
    pub fn annotate(annotator: &Annotator, tables: Vec<Table>, threads: usize) -> AnnotatedCorpus {
        let annotations =
            annotator.annotate_batch(&tables, threads).into_iter().map(|(ann, _)| ann).collect();
        AnnotatedCorpus { tables, annotations }
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "misaligned corpus")]
    fn misaligned_parts_panic() {
        AnnotatedCorpus::from_parts(vec![], vec![TableAnnotation::default()]);
    }

    #[test]
    fn empty_corpus() {
        let c = AnnotatedCorpus::default();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }
}

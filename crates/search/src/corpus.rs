//! An annotated table corpus: the searchable artifact.

use std::path::Path;
use std::sync::Arc;

use webtable_catalog::Catalog;
use webtable_core::{AnnotateRequest, Annotator, Error, TableAnnotation};
use webtable_tables::Table;

/// Tables plus their (machine-produced) annotations, aligned by index.
#[derive(Debug, Clone, Default)]
pub struct AnnotatedCorpus {
    /// The source tables.
    pub tables: Vec<Table>,
    /// One annotation per table.
    pub annotations: Vec<TableAnnotation>,
}

impl AnnotatedCorpus {
    /// Wraps pre-computed annotations.
    pub fn from_parts(tables: Vec<Table>, annotations: Vec<TableAnnotation>) -> AnnotatedCorpus {
        assert_eq!(tables.len(), annotations.len(), "misaligned corpus");
        AnnotatedCorpus { tables, annotations }
    }

    /// Annotates a batch of tables with the given annotator (parallel,
    /// via [`Annotator::run`]).
    #[deprecated(
        since = "0.3.0",
        note = "use `SearchEngine::from_tables`, or `Annotator::run` + `from_parts`"
    )]
    pub fn annotate(annotator: &Annotator, tables: Vec<Table>, threads: usize) -> AnnotatedCorpus {
        let annotations =
            annotator.run(&AnnotateRequest::new(&tables).workers(threads)).annotations;
        AnnotatedCorpus { tables, annotations }
    }

    /// Annotates a batch with an annotator restored from an on-disk
    /// lemma-index snapshot — the restart-free corpus-loading path: build
    /// the catalog index once, then every corpus (re)load afterwards skips
    /// the build entirely. Annotations are identical to
    /// [`annotate`](AnnotatedCorpus::annotate) with a freshly built
    /// annotator (the loaded index is bit-identical to the saved one).
    #[deprecated(
        since = "0.3.0",
        note = "use `Annotator::from_snapshot` + `run` + `from_parts` (or `webtable-serve`, \
                which owns the snapshot-to-corpus path)"
    )]
    pub fn annotate_from_snapshot(
        catalog: Arc<Catalog>,
        snapshot: impl AsRef<Path>,
        tables: Vec<Table>,
        threads: usize,
    ) -> Result<AnnotatedCorpus, Error> {
        let annotator = Annotator::from_snapshot(catalog, snapshot)?;
        let annotations =
            annotator.run(&AnnotateRequest::new(&tables).workers(threads)).annotations;
        Ok(AnnotatedCorpus { tables, annotations })
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "misaligned corpus")]
    fn misaligned_parts_panic() {
        AnnotatedCorpus::from_parts(vec![], vec![TableAnnotation::default()]);
    }

    #[test]
    fn empty_corpus() {
        let c = AnnotatedCorpus::default();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    #[allow(deprecated)] // deliberately exercises the deprecated wrappers
    fn snapshot_roundtrip_corpus_matches_fresh_annotator() {
        use webtable_catalog::{generate_world, WorldConfig};
        use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

        let w = generate_world(&WorldConfig::tiny(31)).unwrap();
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 3);
        let tables: Vec<Table> = g.gen_corpus(4, 6).into_iter().map(|lt| lt.table).collect();

        let annotator = Annotator::new(Arc::clone(&w.catalog));
        let fresh = AnnotatedCorpus::annotate(&annotator, tables.clone(), 2);

        let path =
            std::env::temp_dir().join(format!("webtable-snap-corpus-{}.idx", std::process::id()));
        annotator.save_snapshot(&path).expect("save");
        let restored =
            AnnotatedCorpus::annotate_from_snapshot(Arc::clone(&w.catalog), &path, tables, 2)
                .expect("snapshot corpus load");
        let _ = std::fs::remove_file(&path);

        assert_eq!(fresh.len(), restored.len());
        for (a, b) in fresh.annotations.iter().zip(&restored.annotations) {
            assert_eq!(a.cell_entities, b.cell_entities);
            assert_eq!(a.column_types, b.column_types);
            assert_eq!(a.relations, b.relations);
        }
    }
}

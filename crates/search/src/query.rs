//! Select-project query processing (§5, Figures 3 and 4).
//!
//! The query form: given `R, T1, T2, E2 ∈+ T2` with `R(T1, T2)` in the
//! catalog, return ranked `E1 ∈+ T1` such that `R(E1, E2)` holds.
//!
//! Three processors:
//! * [`baseline_search`] — Figure 3: all inputs interpreted as strings,
//!   tables matched by header/context text, answers are cell strings;
//! * [`typed_search`] with `use_relations = false` — Figure 4 restricted
//!   to column-type annotations;
//! * [`typed_search`] with `use_relations = true` — full Figure 4, using
//!   type and relation annotations and entity-annotated cells.

use std::collections::HashMap;

use webtable_catalog::{Catalog, EntityId, RelationId, TypeId};
use webtable_text::{to_sorted_set, tokenize};

use crate::corpus::AnnotatedCorpus;
use crate::index::SearchIndex;

/// A select-project entity query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntityQuery {
    /// The relation `R`.
    pub relation: RelationId,
    /// Answer type `T1` (the relation's left/subject role).
    pub t1: TypeId,
    /// Given-side type `T2`.
    pub t2: TypeId,
    /// The given entity `E2 ∈+ T2`.
    pub e2: EntityId,
}

/// An answer: a resolved catalog entity (typed processors) or a raw cell
/// string (baseline / unannotated cells).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnswerKey {
    /// A catalog entity.
    Entity(EntityId),
    /// A normalized (lowercased, trimmed) cell string.
    Text(String),
    /// A whole corpus table, by external [`webtable_tables::TableId`] value
    /// (table retrieval answers).
    Table(u64),
    /// A suggested table column (column population answers): a normalized
    /// header label plus the column's annotated type, when one is known.
    Column {
        /// Normalized (lowercased, trimmed) header label.
        label: String,
        /// Column-type annotation backing the suggestion, if any.
        ty: Option<TypeId>,
    },
}

/// One ranked answer.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnswer {
    /// The answer key.
    pub key: AnswerKey,
    /// Aggregated evidence score (higher = better).
    pub score: f64,
}

/// Ranks an evidence map deterministically (score desc, key asc).
fn rank(evidence: HashMap<AnswerKey, f64>) -> Vec<RankedAnswer> {
    rank_bounded(evidence, usize::MAX)
}

/// Ranks scored keys deterministically (score desc, key asc) and keeps the
/// top `k`. Shared by the retrieval and augmentation processors, which all
/// carry an explicit result bound.
pub(crate) fn rank_bounded(
    evidence: impl IntoIterator<Item = (AnswerKey, f64)>,
    k: usize,
) -> Vec<RankedAnswer> {
    let mut out: Vec<RankedAnswer> =
        evidence.into_iter().map(|(key, score)| RankedAnswer { key, score }).collect();
    out.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.key.cmp(&b.key)));
    out.truncate(k);
    out
}

/// Figure 3: the annotation-free baseline. All query parts become strings
/// (catalog names); tables qualify when *both* type strings match some
/// column header; `E2`'s string is sought in the `T2` column by token
/// overlap; the co-row `T1` cells are collected, clustered by normalized
/// text, and ranked by (context-boosted) frequency.
#[deprecated(since = "0.2.0", note = "use `SearchEngine::search` with `Query::Baseline`")]
pub fn baseline_search(
    catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    q: &EntityQuery,
) -> Vec<RankedAnswer> {
    baseline_search_impl(catalog, index, corpus, q)
}

/// The Figure 3 processor body; shared by the deprecated free function and
/// [`SearchEngine::search`](crate::SearchEngine::search).
pub(crate) fn baseline_search_impl(
    catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    q: &EntityQuery,
) -> Vec<RankedAnswer> {
    let t1_str = catalog.type_name(q.t1);
    let t2_str = catalog.type_name(q.t2);
    let r_str = catalog.relation_name(q.relation);
    let e2_tokens = to_sorted_set(
        tokenize(catalog.entity_name(q.e2)).into_iter().map(|t| hash_token(&t)).collect(),
    );

    // Column sets whose headers match the type strings.
    let mut t1_cols: HashMap<(u32, u16), usize> = HashMap::new();
    for tok in tokenize(t1_str) {
        for &col in index.header_cols_with_token(&tok) {
            *t1_cols.entry(col).or_insert(0) += 1;
        }
    }
    let mut t2_cols: HashMap<(u32, u16), usize> = HashMap::new();
    for tok in tokenize(t2_str) {
        for &col in index.header_cols_with_token(&tok) {
            *t2_cols.entry(col).or_insert(0) += 1;
        }
    }
    // Context matches for the relation string (a soft boost).
    let mut ctx_tables: HashMap<u32, usize> = HashMap::new();
    for tok in tokenize(r_str) {
        for &t in index.tables_with_context_token(&tok) {
            *ctx_tables.entry(t).or_insert(0) += 1;
        }
    }

    let mut evidence: HashMap<AnswerKey, f64> = HashMap::new();
    for &(t, c1) in t1_cols.keys() {
        for &(t2, c2) in t2_cols.keys() {
            if t != t2 || c1 == c2 {
                continue;
            }
            let table = &corpus.tables[t as usize];
            let boost = 1.0 + 0.5 * *ctx_tables.get(&t).unwrap_or(&0) as f64;
            for row in &table.rows {
                let cell2 = &row[c2 as usize];
                let cell2_tokens =
                    to_sorted_set(tokenize(cell2).into_iter().map(|s| hash_token(&s)).collect());
                let overlap = webtable_text::sim::containment(&e2_tokens, &cell2_tokens);
                if overlap < 0.6 {
                    continue;
                }
                let answer_text = row[c1 as usize].trim().to_lowercase();
                if answer_text.is_empty() {
                    continue;
                }
                *evidence.entry(AnswerKey::Text(answer_text)).or_insert(0.0) += boost * overlap;
            }
        }
    }
    rank(evidence)
}

/// Figure 4: the annotation-aware processor. With `use_relations = false`,
/// tables qualify through column-type annotations alone (`T1`, `T2`
/// columns in the same table); with `use_relations = true`, the pair must
/// additionally be annotated with `R` in the correct orientation.
#[deprecated(since = "0.2.0", note = "use `SearchEngine::search` with `Query::Typed`")]
pub fn typed_search(
    _catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    q: &EntityQuery,
    use_relations: bool,
) -> Vec<RankedAnswer> {
    typed_search_impl(index, corpus, q, use_relations)
}

/// The Figure 4 processor body; shared by the deprecated free function,
/// the join processor, and [`SearchEngine::search`](crate::SearchEngine::search).
/// (The catalog is no longer needed here: the subtype expansion moved into
/// `SearchIndex::build`.)
pub(crate) fn typed_search_impl(
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    q: &EntityQuery,
    use_relations: bool,
) -> Vec<RankedAnswer> {
    // Qualifying (table, c1, c2) triples, c1 = answer column.
    let mut triples: Vec<(u32, u16, u16)> = Vec::new();
    if use_relations {
        for &(t, c_left, c_right) in index.pairs_of_relation(q.relation) {
            triples.push((t, c_left, c_right));
        }
    } else {
        let t1_cols = index.columns_of_type(q.t1);
        let t2_cols = index.columns_of_type(q.t2);
        let mut by_table: HashMap<u32, (Vec<u16>, Vec<u16>)> = HashMap::new();
        for &(t, c) in t1_cols {
            by_table.entry(t).or_default().0.push(c);
        }
        for &(t, c) in t2_cols {
            by_table.entry(t).or_default().1.push(c);
        }
        for (t, (cs1, cs2)) in by_table {
            for &c1 in &cs1 {
                for &c2 in &cs2 {
                    if c1 != c2 {
                        triples.push((t, c1, c2));
                    }
                }
            }
        }
        triples.sort_unstable();
    }

    // Rows where the c2 cell is annotated with E2.
    let e2_cells: HashMap<(u32, u16), Vec<u32>> = {
        let mut m: HashMap<(u32, u16), Vec<u32>> = HashMap::new();
        for &(t, r, c) in index.cells_of_entity(q.e2) {
            m.entry((t, c)).or_default().push(r);
        }
        m
    };

    let mut evidence: HashMap<AnswerKey, f64> = HashMap::new();
    for (t, c1, c2) in triples {
        let Some(rows) = e2_cells.get(&(t, c2)) else { continue };
        let table = &corpus.tables[t as usize];
        let ann = &corpus.annotations[t as usize];
        for &r in rows {
            let key = (r as usize, c1 as usize);
            let answer = match ann.cell_entities.get(&key).copied().flatten() {
                Some(e1) => AnswerKey::Entity(e1),
                None => {
                    let text = table.cell(r as usize, c1 as usize).trim().to_lowercase();
                    if text.is_empty() {
                        continue;
                    }
                    AnswerKey::Text(text)
                }
            };
            // Evidence: one vote per supporting row, weighted by the
            // annotator's confidence in the answer cell (§5: "aggregate
            // evidence in favor of known entities").
            let conf = ann.cell_confidence.get(&key).copied().unwrap_or(0.0);
            *evidence.entry(answer).or_insert(0.0) += 1.0 + conf.min(2.0);
        }
    }
    rank(evidence)
}

/// Stable 32-bit FNV-1a hash for token-set overlap computations.
fn hash_token(s: &str) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in s.bytes() {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use webtable_catalog::{generate_world, WorldConfig};
    use webtable_core::Annotator;
    use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

    use super::*;

    fn searchable_world() -> (webtable_catalog::World, AnnotatedCorpus, SearchIndex) {
        let w = generate_world(&WorldConfig::tiny(5)).unwrap();
        let annotator = Annotator::new(Arc::clone(&w.catalog));
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 61);
        let mut tables = Vec::new();
        for _ in 0..6 {
            tables.push(g.gen_table_for_relation(w.relations.directed, 10).table);
        }
        for _ in 0..4 {
            tables.push(g.gen_table_for_relation(w.relations.acted_in, 8).table);
        }
        let annotations =
            annotator.run(&webtable_core::AnnotateRequest::new(&tables).workers(2)).annotations;
        let corpus = AnnotatedCorpus::from_parts(tables, annotations);
        let index = SearchIndex::build(&corpus, &w.catalog);
        (w, corpus, index)
    }

    fn a_query(w: &webtable_catalog::World) -> EntityQuery {
        // Pick a director appearing in the corpus-generating relation.
        let rel = w.oracle.relation(w.relations.directed);
        let (_, e2) = rel.tuples[0];
        EntityQuery { relation: w.relations.directed, t1: w.types.movie, t2: w.types.director, e2 }
    }

    #[test]
    fn typed_search_returns_ranked_answers() {
        let (w, corpus, index) = searchable_world();
        let q = a_query(&w);
        let res = typed_search_impl(&index, &corpus, &q, true);
        // Ranking is sorted.
        for pair in res.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        let res2 = typed_search_impl(&index, &corpus, &q, true);
        assert_eq!(res, res2, "search must be deterministic");
    }

    #[test]
    fn typed_beats_nothing_when_relation_absent() {
        let (w, corpus, index) = searchable_world();
        // Query a relation the corpus never expresses: capital.
        let rel = w.oracle.relation(w.relations.capital);
        let Some(&(_, e2)) = rel.tuples.first() else { return };
        let q = EntityQuery {
            relation: w.relations.capital,
            t1: w.types.country,
            t2: w.types.city,
            e2,
        };
        let res = typed_search_impl(&index, &corpus, &q, true);
        assert!(res.is_empty(), "no annotated capital pairs exist: {res:?}");
    }

    #[test]
    fn baseline_returns_text_answers() {
        let (w, corpus, index) = searchable_world();
        let q = a_query(&w);
        let res = baseline_search_impl(&w.catalog, &index, &corpus, &q);
        for a in &res {
            assert!(matches!(a.key, AnswerKey::Text(_)), "baseline answers are strings");
        }
    }

    #[test]
    fn hash_token_is_stable() {
        assert_eq!(hash_token("film"), hash_token("film"));
        assert_ne!(hash_token("film"), hash_token("films"));
    }
}

//! The search index over an annotated corpus.
//!
//! Two layers, mirroring §5:
//!
//! * a **text layer** (the Lucene stand-in): inverted postings from tokens
//!   to table contexts, column headers, and cells — all the baseline of
//!   Figure 3 may use;
//! * an **annotation layer**: type → annotated columns, relation →
//!   annotated column pairs (oriented), entity → annotated cells — what
//!   the typed processors of Figure 4 use.

use std::collections::HashMap;

use webtable_catalog::{Catalog, EntityId, RelationId, TypeId};
use webtable_text::{tokenize, Vocab};

use crate::corpus::AnnotatedCorpus;

/// Posting: a column of a table.
pub type ColRef = (u32, u16);
/// Posting: a cell of a table.
pub type CellRef = (u32, u32, u16);
/// Posting: an oriented column pair (left column first).
pub type PairRef = (u32, u16, u16);

/// The two-layer search index. Immutable after construction.
#[derive(Debug)]
pub struct SearchIndex {
    vocab: Vocab,
    /// token → tables whose *context* contains it.
    context_postings: Vec<Vec<u32>>,
    /// token → header columns containing it.
    header_postings: Vec<Vec<ColRef>>,
    /// token → cells containing it.
    cell_postings: Vec<Vec<CellRef>>,
    /// query type → columns annotated with it *or any subtype*, merged and
    /// sorted at build time (the subtype expansion Figure 4's "column
    /// labeled T1" implies), so lookups return a precomputed slice.
    type_cols: HashMap<TypeId, Vec<ColRef>>,
    /// relation → oriented column pairs.
    rel_pairs: HashMap<RelationId, Vec<PairRef>>,
    /// entity → cells annotated with it.
    entity_cells: HashMap<EntityId, Vec<CellRef>>,
}

impl SearchIndex {
    /// Builds the index over a corpus. The catalog supplies the type DAG
    /// for the build-time subtype expansion of
    /// [`columns_of_type`](SearchIndex::columns_of_type).
    pub fn build(corpus: &AnnotatedCorpus, catalog: &Catalog) -> SearchIndex {
        let mut vocab = Vocab::new();
        let mut context_postings: Vec<Vec<u32>> = Vec::new();
        let mut header_postings: Vec<Vec<ColRef>> = Vec::new();
        let mut cell_postings: Vec<Vec<CellRef>> = Vec::new();
        let mut type_cols: HashMap<TypeId, Vec<ColRef>> = HashMap::new();
        let mut rel_pairs: HashMap<RelationId, Vec<PairRef>> = HashMap::new();
        let mut entity_cells: HashMap<EntityId, Vec<CellRef>> = HashMap::new();

        for (ti, table) in corpus.tables.iter().enumerate() {
            let t = ti as u32;
            for tok in tokenize(&table.context) {
                let id = vocab.intern(&tok) as usize;
                if context_postings.len() <= id {
                    context_postings.resize_with(id + 1, Vec::new);
                }
                if context_postings[id].last() != Some(&t) {
                    context_postings[id].push(t);
                }
            }
            for (c, header) in table.headers.iter().enumerate() {
                if let Some(h) = header {
                    for tok in tokenize(h) {
                        let id = vocab.intern(&tok) as usize;
                        if header_postings.len() <= id {
                            header_postings.resize_with(id + 1, Vec::new);
                        }
                        let entry = (t, c as u16);
                        if header_postings[id].last() != Some(&entry) {
                            header_postings[id].push(entry);
                        }
                    }
                }
            }
            for (r, row) in table.rows.iter().enumerate() {
                for (c, cell) in row.iter().enumerate() {
                    for tok in tokenize(cell) {
                        let id = vocab.intern(&tok) as usize;
                        if cell_postings.len() <= id {
                            cell_postings.resize_with(id + 1, Vec::new);
                        }
                        let entry = (t, r as u32, c as u16);
                        if cell_postings[id].last() != Some(&entry) {
                            cell_postings[id].push(entry);
                        }
                    }
                }
            }

            // Annotation layer.
            let ann = &corpus.annotations[ti];
            for (&c, &ty) in &ann.column_types {
                if let Some(ty) = ty {
                    type_cols.entry(ty).or_default().push((t, c as u16));
                }
            }
            for (&(c1, c2), &rel) in &ann.relations {
                if let Some(rel) = rel {
                    rel_pairs.entry(rel).or_default().push((t, c1 as u16, c2 as u16));
                }
            }
            for (&(r, c), &e) in &ann.cell_entities {
                if let Some(e) = e {
                    entity_cells.entry(e).or_default().push((t, r as u32, c as u16));
                }
            }
        }
        // Subtype expansion, once, at build time: a column annotated
        // `film` must answer queries for `work` too. Every ancestor of an
        // annotated type gets the merged posting; queries for types no
        // annotated type reaches return the empty slice. (Annotated ids
        // outside the catalog's range — foreign annotations — keep a
        // posting under their own id only.)
        let mut expanded: HashMap<TypeId, Vec<ColRef>> = HashMap::new();
        for (&t, cols) in &type_cols {
            if t.index() < catalog.num_types() {
                for &ancestor in catalog.ancestors(t) {
                    expanded.entry(ancestor).or_default().extend_from_slice(cols);
                }
            } else {
                expanded.entry(t).or_default().extend_from_slice(cols);
            }
        }
        let mut type_cols = expanded;

        // Deterministic ordering for annotation postings.
        for v in type_cols.values_mut() {
            v.sort_unstable();
        }
        for v in rel_pairs.values_mut() {
            v.sort_unstable();
        }
        for v in entity_cells.values_mut() {
            v.sort_unstable();
        }
        SearchIndex {
            vocab,
            context_postings,
            header_postings,
            cell_postings,
            type_cols,
            rel_pairs,
            entity_cells,
        }
    }

    /// Tables whose context contains `token`.
    pub fn tables_with_context_token(&self, token: &str) -> &[u32] {
        self.lookup(&self.context_postings, token)
    }

    /// Header columns containing `token`.
    pub fn header_cols_with_token(&self, token: &str) -> &[ColRef] {
        self.lookup(&self.header_postings, token)
    }

    /// Cells containing `token`.
    pub fn cells_with_token(&self, token: &str) -> &[CellRef] {
        self.lookup(&self.cell_postings, token)
    }

    fn lookup<'a, T>(&self, postings: &'a [Vec<T>], token: &str) -> &'a [T] {
        match self.vocab.get(&token.to_lowercase()) {
            Some(id) => postings.get(id as usize).map(Vec::as_slice).unwrap_or(&[]),
            None => &[],
        }
    }

    /// Columns annotated with a type `T' ⊆* query_type`. The subtype
    /// expansion happens once at [`build`](SearchIndex::build) time (it
    /// used to be recomputed — and a fresh `Vec` allocated — on every
    /// call), so this is now a plain posting lookup like its sibling
    /// accessors.
    pub fn columns_of_type(&self, query_type: TypeId) -> &[ColRef] {
        self.type_cols.get(&query_type).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Oriented column pairs annotated with a relation.
    pub fn pairs_of_relation(&self, rel: RelationId) -> &[PairRef] {
        self.rel_pairs.get(&rel).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Cells annotated with an entity.
    pub fn cells_of_entity(&self, e: EntityId) -> &[CellRef] {
        self.entity_cells.get(&e).map(Vec::as_slice).unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use webtable_catalog::CatalogBuilder;
    use webtable_core::TableAnnotation;
    use webtable_tables::{Table, TableId};

    use super::*;

    /// A minimal catalog; the tiny corpus annotates with ids outside its
    /// range on purpose (foreign annotations keep working).
    fn tiny_catalog() -> Catalog {
        let mut b = CatalogBuilder::new();
        let t = b.add_type("thing", &[]).unwrap();
        b.add_entity("something", &[], &[t]).unwrap();
        b.finish().unwrap()
    }

    fn tiny_corpus() -> AnnotatedCorpus {
        let t0 = Table::new(
            TableId(0),
            "movies directed by people",
            vec![Some("Film".into()), Some("Director".into())],
            vec![vec!["Heat".into(), "Mann".into()], vec!["Alien".into(), "Scott".into()]],
        );
        let mut ann = TableAnnotation::default();
        ann.column_types.insert(0, Some(TypeId(10)));
        ann.column_types.insert(1, Some(TypeId(20)));
        ann.relations.insert((0, 1), Some(RelationId(5)));
        ann.cell_entities.insert((0, 0), Some(EntityId(100)));
        ann.cell_entities.insert((0, 1), Some(EntityId(200)));
        ann.cell_entities.insert((1, 0), None);
        AnnotatedCorpus::from_parts(vec![t0], vec![ann])
    }

    #[test]
    fn text_layer_finds_tokens() {
        let idx = SearchIndex::build(&tiny_corpus(), &tiny_catalog());
        assert_eq!(idx.tables_with_context_token("directed"), &[0]);
        assert_eq!(idx.header_cols_with_token("film"), &[(0, 0)]);
        assert_eq!(idx.header_cols_with_token("director"), &[(0, 1)]);
        assert_eq!(idx.cells_with_token("heat"), &[(0, 0, 0)]);
        assert!(idx.cells_with_token("nonexistent").is_empty());
        // Case-insensitive lookups.
        assert_eq!(idx.cells_with_token("HEAT"), &[(0, 0, 0)]);
    }

    #[test]
    fn annotation_layer_finds_labels() {
        let idx = SearchIndex::build(&tiny_corpus(), &tiny_catalog());
        assert_eq!(idx.pairs_of_relation(RelationId(5)), &[(0, 0, 1)]);
        assert!(idx.pairs_of_relation(RelationId(9)).is_empty());
        assert_eq!(idx.cells_of_entity(EntityId(100)), &[(0, 0, 0)]);
        assert!(idx.cells_of_entity(EntityId(999)).is_empty());
    }

    #[test]
    fn type_lookup_expands_subtypes() {
        let mut b = CatalogBuilder::new();
        let work = b.add_type("work", &[]).unwrap();
        let film = b.add_type("film", &[]).unwrap();
        b.add_subtype(film, work);
        let cat = b.finish().unwrap();
        // Column annotated `film` (id 1 == TypeId(1)).
        let t0 = Table::new(TableId(0), "", vec![None], vec![vec!["x".into()]]);
        let mut ann = TableAnnotation::default();
        ann.column_types.insert(0, Some(film));
        let corpus = AnnotatedCorpus::from_parts(vec![t0], vec![ann]);
        let idx = SearchIndex::build(&corpus, &cat);
        // Query for the supertype must find the film column.
        assert_eq!(idx.columns_of_type(work), &[(0, 0)]);
        assert_eq!(idx.columns_of_type(film), &[(0, 0)]);
    }
}

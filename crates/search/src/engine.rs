//! The search front door: one engine, one query type, one entry point.
//!
//! Before the API redesign the three processors of §5 were free functions
//! (`baseline_search`, `typed_search`, `join_search`) that each threaded
//! `catalog` / `index` / `corpus` by hand at every call site. The
//! [`SearchEngine`] owns those three pieces — built once, queried many
//! times — and a [`Query`] value names the processor:
//!
//! ```text
//! tables ─► Annotator::run ─► AnnotatedCorpus ─► SearchEngine::build
//!                                                      │
//! Query::Baseline / Typed / Join ─► SearchEngine::search ─► Vec<RankedAnswer>
//! ```
//!
//! The deprecated free functions remain as wrappers over the same
//! processor bodies, pinned result-identical by
//! `crates/search/tests/engine_equivalence.rs`.

use std::sync::Arc;

use webtable_catalog::Catalog;
use webtable_core::{AnnotateRequest, Annotator};
use webtable_tables::Table;

use crate::corpus::AnnotatedCorpus;
use crate::index::SearchIndex;
use crate::join::{join_search_impl, JoinQuery};
use crate::query::{baseline_search_impl, typed_search_impl, AnswerKey, EntityQuery, RankedAnswer};

/// One search request: which processor of §5 to run, with its inputs.
///
/// `#[non_exhaustive]`, matching [`webtable_core::Error`]'s contract: new
/// workloads (keyword table retrieval, row/column population, …) land as
/// new variants without breaking downstream matches — match with a `_`
/// arm. Existing variants stay constructible; the wire names in
/// [`crate::wire`] are the stable serialized form.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Query {
    /// Figure 3: strings only, no annotations consulted. Answers are
    /// normalized cell strings.
    Baseline(EntityQuery),
    /// Figure 4: column-type annotations qualify tables; with
    /// `use_relations` the column pair must additionally carry the
    /// relation annotation in the correct orientation.
    Typed {
        /// The select-project query.
        query: EntityQuery,
        /// Whether relation annotations are required (full Figure 4).
        use_relations: bool,
    },
    /// Two-hop join `R1(e1, e2) ∧ R2(e2, E3)` (§2.1's declared future
    /// work): answers are the outer `e1`, scored by multiplied evidence
    /// along the chain, best `e2` per answer.
    Join {
        /// The join query.
        query: JoinQuery,
        /// How many join-variable candidates stage one explores.
        mid_k: usize,
    },
}

/// The engine owning everything a query needs: the catalog the corpus was
/// annotated against, the annotated corpus, and the two-layer
/// [`SearchIndex`] over it. Build once, [`search`](SearchEngine::search)
/// many times; cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct SearchEngine {
    catalog: Arc<Catalog>,
    corpus: AnnotatedCorpus,
    index: SearchIndex,
}

impl SearchEngine {
    /// Builds the engine (and its search index) over an already-annotated
    /// corpus.
    pub fn build(catalog: Arc<Catalog>, corpus: AnnotatedCorpus) -> SearchEngine {
        let index = SearchIndex::build(&corpus, &catalog);
        SearchEngine { catalog, corpus, index }
    }

    /// The full ingest path: annotates raw tables with `workers` threads
    /// (via [`Annotator::run`]) and builds the engine over the result.
    pub fn from_tables(annotator: &Annotator, tables: Vec<Table>, workers: usize) -> SearchEngine {
        let annotations =
            annotator.run(&AnnotateRequest::new(&tables).workers(workers)).annotations;
        SearchEngine::build(
            Arc::clone(&annotator.catalog),
            AnnotatedCorpus::from_parts(tables, annotations),
        )
    }

    /// Executes one query — the single search entry point. Results are
    /// deterministic (score descending, key ascending on ties).
    ///
    /// `Query::Join` answers are projected onto the outer entity `e1`
    /// keeping the best-scoring join chain per answer; use the corpus and
    /// annotations directly (or the deprecated `join_search`) if the join
    /// variable itself is needed.
    pub fn search(&self, query: &Query) -> Vec<RankedAnswer> {
        match *query {
            Query::Baseline(ref q) => {
                baseline_search_impl(&self.catalog, &self.index, &self.corpus, q)
            }
            Query::Typed { ref query, use_relations } => {
                typed_search_impl(&self.index, &self.corpus, query, use_relations)
            }
            Query::Join { ref query, mid_k } => {
                // join_search_impl sorts score-desc, so the first sighting
                // of each e1 carries its best chain.
                let mut out: Vec<RankedAnswer> = Vec::new();
                let mut seen: std::collections::HashSet<AnswerKey> =
                    std::collections::HashSet::new();
                for a in join_search_impl(&self.catalog, &self.index, &self.corpus, query, mid_k) {
                    if seen.insert(a.e1.clone()) {
                        out.push(RankedAnswer { key: a.e1, score: a.score });
                    }
                }
                out
            }
        }
    }

    /// The catalog queries resolve against.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The annotated corpus being searched.
    pub fn corpus(&self) -> &AnnotatedCorpus {
        &self.corpus
    }

    /// The two-layer search index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use webtable_catalog::{generate_world, WorldConfig};
    use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

    use super::*;

    fn engine() -> (webtable_catalog::World, SearchEngine) {
        let w = generate_world(&WorldConfig::tiny(5)).unwrap();
        let annotator = Annotator::new(Arc::clone(&w.catalog));
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 61);
        let mut tables = Vec::new();
        for _ in 0..6 {
            tables.push(g.gen_table_for_relation(w.relations.directed, 10).table);
        }
        let e = SearchEngine::from_tables(&annotator, tables, 2);
        (w, e)
    }

    #[test]
    fn one_entry_point_serves_all_three_processors() {
        let (w, engine) = engine();
        let rel = w.oracle.relation(w.relations.directed);
        let (_, e2) = rel.tuples[0];
        let q = EntityQuery {
            relation: w.relations.directed,
            t1: w.types.movie,
            t2: w.types.director,
            e2,
        };
        for query in [
            Query::Baseline(q),
            Query::Typed { query: q, use_relations: false },
            Query::Typed { query: q, use_relations: true },
        ] {
            let res = engine.search(&query);
            let again = engine.search(&query);
            assert_eq!(res, again, "search must be deterministic: {query:?}");
            for pair in res.windows(2) {
                assert!(pair[0].score >= pair[1].score, "ranking must be sorted: {query:?}");
            }
        }
    }

    #[test]
    fn join_projection_dedups_on_best_chain() {
        let (w, engine) = engine();
        // A join over relations the corpus doesn't express yields nothing
        // (rather than fuzzy text matches).
        let q = Query::Join {
            query: JoinQuery {
                r1: w.relations.directed,
                r2: w.relations.born_in,
                e3: webtable_catalog::EntityId(0),
            },
            mid_k: 5,
        };
        let res = engine.search(&q);
        let mut keys: Vec<&AnswerKey> = res.iter().map(|a| &a.key).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "projected join answers must be unique per e1");
        for pair in res.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn accessors_expose_the_owned_parts() {
        let (w, engine) = engine();
        assert_eq!(engine.catalog().num_entities(), w.catalog.num_entities());
        assert_eq!(engine.corpus().len(), 6);
        // The index is usable directly for lower-level probes.
        assert!(engine.index().columns_of_type(w.types.movie).len() <= engine.corpus().len() * 4);
    }
}

//! The search front door: one engine, one query type, one entry point.
//!
//! Before the API redesign the three processors of §5 were free functions
//! (`baseline_search`, `typed_search`, `join_search`) that each threaded
//! `catalog` / `index` / `corpus` by hand at every call site. The
//! [`SearchEngine`] owns those three pieces — built once, queried many
//! times — and a [`Query`] value names the processor:
//!
//! ```text
//! tables ─► Annotator::run ─► AnnotatedCorpus ─► SearchEngine::build
//!                                                      │
//! Query::Baseline / Typed / Join ─► SearchEngine::search ─► Vec<RankedAnswer>
//! ```
//!
//! The deprecated free functions remain as wrappers over the same
//! processor bodies, pinned result-identical by
//! `crates/search/tests/engine_equivalence.rs`.

use std::sync::Arc;

use webtable_catalog::Catalog;
use webtable_core::{AnnotateRequest, Annotator};
use webtable_tables::Table;

use webtable_catalog::{EntityId, RelationId};

use crate::augment::{populate_columns, populate_rows, related_search};
use crate::corpus::AnnotatedCorpus;
use crate::index::SearchIndex;
use crate::join::{join_search_impl, JoinQuery};
use crate::query::{baseline_search_impl, typed_search_impl, AnswerKey, EntityQuery, RankedAnswer};
use crate::retrieval::TableIndex;

/// One search request: which processor to run, with its inputs.
///
/// `#[non_exhaustive]`, matching [`webtable_core::Error`]'s contract: new
/// workloads land as new variants without breaking downstream matches —
/// match with a `_` arm. Existing variants stay constructible; the wire
/// names in [`crate::wire`] are the stable serialized form.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Query {
    /// Figure 3: strings only, no annotations consulted. Answers are
    /// normalized cell strings.
    Baseline(EntityQuery),
    /// Figure 4: column-type annotations qualify tables; with
    /// `use_relations` the column pair must additionally carry the
    /// relation annotation in the correct orientation.
    Typed {
        /// The select-project query.
        query: EntityQuery,
        /// Whether relation annotations are required (full Figure 4).
        use_relations: bool,
    },
    /// Two-hop join `R1(e1, e2) ∧ R2(e2, E3)` (§2.1's declared future
    /// work): answers are the outer `e1`, scored by multiplied evidence
    /// along the chain, best `e2` per answer.
    Join {
        /// The join query.
        query: JoinQuery,
        /// How many join-variable candidates stage one explores.
        mid_k: usize,
    },
    /// Keyword table retrieval: rank whole annotated tables for a keyword
    /// query over the table-level index. Answers are
    /// [`AnswerKey::Table`] keys.
    Tables {
        /// The keyword query (tokenized, deduplicated).
        keywords: String,
        /// Result bound.
        k: usize,
    },
    /// Row population: given seed entities from a partial table's key
    /// column, suggest new row entities by corpus co-occurrence plus
    /// type compatibility. Answers are [`AnswerKey::Entity`] keys.
    PopulateRows {
        /// Seed entities already in the key column.
        seeds: Vec<EntityId>,
        /// Result bound.
        k: usize,
    },
    /// Column population: given the same seeds, suggest candidate new
    /// columns (header label + annotated type) from tables sharing the
    /// entity set. Answers are [`AnswerKey::Column`] keys.
    PopulateColumns {
        /// Seed entities identifying the table's subject column.
        seeds: Vec<EntityId>,
        /// Result bound.
        k: usize,
    },
    /// Entity-relationship query: "what is related to `entity` via
    /// `relation`?", answered over relation annotations in either
    /// orientation.
    Related {
        /// The given entity.
        entity: EntityId,
        /// The relation to follow.
        relation: RelationId,
        /// Result bound.
        k: usize,
    },
}

impl Query {
    /// The query's stable wire-format kind name (also used as the
    /// per-kind metrics label in `webtable-serve`).
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Baseline(_) => "baseline",
            Query::Typed { .. } => "typed",
            Query::Join { .. } => "join",
            Query::Tables { .. } => "tables",
            Query::PopulateRows { .. } => "populate_rows",
            Query::PopulateColumns { .. } => "populate_columns",
            Query::Related { .. } => "related",
        }
    }
}

/// The engine owning everything a query needs: the catalog the corpus was
/// annotated against, the annotated corpus, and the two-layer
/// [`SearchIndex`] over it. Build once, [`search`](SearchEngine::search)
/// many times; cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct SearchEngine {
    catalog: Arc<Catalog>,
    corpus: AnnotatedCorpus,
    index: SearchIndex,
    tables: TableIndex,
}

impl SearchEngine {
    /// Builds the engine (and its cell-level and table-level indexes)
    /// over an already-annotated corpus.
    pub fn build(catalog: Arc<Catalog>, corpus: AnnotatedCorpus) -> SearchEngine {
        let index = SearchIndex::build(&corpus, &catalog);
        let tables = TableIndex::build(&corpus, &catalog);
        SearchEngine { catalog, corpus, index, tables }
    }

    /// The full ingest path: annotates raw tables with `workers` threads
    /// (via [`Annotator::run`]) and builds the engine over the result.
    pub fn from_tables(annotator: &Annotator, tables: Vec<Table>, workers: usize) -> SearchEngine {
        let annotations =
            annotator.run(&AnnotateRequest::new(&tables).workers(workers)).annotations;
        SearchEngine::build(
            Arc::clone(&annotator.catalog),
            AnnotatedCorpus::from_parts(tables, annotations),
        )
    }

    /// Executes one query — the single search entry point. Results are
    /// deterministic (score descending, key ascending on ties).
    ///
    /// `Query::Join` answers are projected onto the outer entity `e1`
    /// keeping the best-scoring join chain per answer; use the corpus and
    /// annotations directly (or the deprecated `join_search`) if the join
    /// variable itself is needed.
    pub fn search(&self, query: &Query) -> Vec<RankedAnswer> {
        match *query {
            Query::Baseline(ref q) => {
                baseline_search_impl(&self.catalog, &self.index, &self.corpus, q)
            }
            Query::Typed { ref query, use_relations } => {
                typed_search_impl(&self.index, &self.corpus, query, use_relations)
            }
            Query::Join { ref query, mid_k } => {
                // join_search_impl sorts score-desc, so the first sighting
                // of each e1 carries its best chain.
                let mut out: Vec<RankedAnswer> = Vec::new();
                let mut seen: std::collections::HashSet<AnswerKey> =
                    std::collections::HashSet::new();
                for a in join_search_impl(&self.catalog, &self.index, &self.corpus, query, mid_k) {
                    if seen.insert(a.e1.clone()) {
                        out.push(RankedAnswer { key: a.e1, score: a.score });
                    }
                }
                out
            }
            Query::Tables { ref keywords, k } => self.tables.search(keywords, k),
            Query::PopulateRows { ref seeds, k } => {
                populate_rows(&self.catalog, &self.index, &self.corpus, seeds, k)
            }
            Query::PopulateColumns { ref seeds, k } => {
                populate_columns(&self.catalog, &self.index, &self.corpus, seeds, k)
            }
            Query::Related { entity, relation, k } => {
                related_search(&self.index, &self.corpus, entity, relation, k)
            }
        }
    }

    /// The catalog queries resolve against.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The annotated corpus being searched.
    pub fn corpus(&self) -> &AnnotatedCorpus {
        &self.corpus
    }

    /// The two-layer search index.
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// The table-level retrieval index.
    pub fn table_index(&self) -> &TableIndex {
        &self.tables
    }
}

#[cfg(test)]
mod tests {
    use webtable_catalog::{generate_world, WorldConfig};
    use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

    use super::*;

    fn engine() -> (webtable_catalog::World, SearchEngine) {
        let w = generate_world(&WorldConfig::tiny(5)).unwrap();
        let annotator = Annotator::new(Arc::clone(&w.catalog));
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 61);
        let mut tables = Vec::new();
        for _ in 0..6 {
            tables.push(g.gen_table_for_relation(w.relations.directed, 10).table);
        }
        let e = SearchEngine::from_tables(&annotator, tables, 2);
        (w, e)
    }

    #[test]
    fn one_entry_point_serves_all_three_processors() {
        let (w, engine) = engine();
        let rel = w.oracle.relation(w.relations.directed);
        let (_, e2) = rel.tuples[0];
        let q = EntityQuery {
            relation: w.relations.directed,
            t1: w.types.movie,
            t2: w.types.director,
            e2,
        };
        for query in [
            Query::Baseline(q),
            Query::Typed { query: q, use_relations: false },
            Query::Typed { query: q, use_relations: true },
        ] {
            let res = engine.search(&query);
            let again = engine.search(&query);
            assert_eq!(res, again, "search must be deterministic: {query:?}");
            for pair in res.windows(2) {
                assert!(pair[0].score >= pair[1].score, "ranking must be sorted: {query:?}");
            }
        }
    }

    #[test]
    fn join_projection_dedups_on_best_chain() {
        let (w, engine) = engine();
        // A join over relations the corpus doesn't express yields nothing
        // (rather than fuzzy text matches).
        let q = Query::Join {
            query: JoinQuery {
                r1: w.relations.directed,
                r2: w.relations.born_in,
                e3: webtable_catalog::EntityId(0),
            },
            mid_k: 5,
        };
        let res = engine.search(&q);
        let mut keys: Vec<&AnswerKey> = res.iter().map(|a| &a.key).collect();
        let before = keys.len();
        keys.dedup();
        assert_eq!(before, keys.len(), "projected join answers must be unique per e1");
        for pair in res.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn retrieval_and_augmentation_share_the_entry_point() {
        let (w, engine) = engine();
        let rel = w.oracle.relation(w.relations.directed);
        let mut seeds: Vec<webtable_catalog::EntityId> = rel
            .tuples
            .iter()
            .map(|&(m, _)| m)
            .filter(|&m| !engine.index().cells_of_entity(m).is_empty())
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        seeds.truncate(2);
        assert!(!seeds.is_empty());
        let queries = [
            Query::Tables { keywords: "movie director".into(), k: 5 },
            Query::PopulateRows { seeds: seeds.clone(), k: 5 },
            Query::PopulateColumns { seeds: seeds.clone(), k: 5 },
            Query::Related { entity: seeds[0], relation: w.relations.directed, k: 5 },
        ];
        for query in &queries {
            let res = engine.search(query);
            assert!(!res.is_empty(), "empty answers for {query:?}");
            assert!(res.len() <= 5);
            assert_eq!(res, engine.search(query), "search must be deterministic: {query:?}");
            for pair in res.windows(2) {
                assert!(pair[0].score >= pair[1].score, "ranking must be sorted: {query:?}");
            }
        }
        assert_eq!(queries[0].kind(), "tables");
        assert_eq!(queries[1].kind(), "populate_rows");
        assert_eq!(queries[2].kind(), "populate_columns");
        assert_eq!(queries[3].kind(), "related");
    }

    #[test]
    fn accessors_expose_the_owned_parts() {
        let (w, engine) = engine();
        assert_eq!(engine.catalog().num_entities(), w.catalog.num_entities());
        assert_eq!(engine.corpus().len(), 6);
        // The index is usable directly for lower-level probes.
        assert!(engine.index().columns_of_type(w.types.movie).len() <= engine.corpus().len() * 4);
    }
}

//! Join queries over annotated tables — the paper's declared future work.
//!
//! §2.1: "our goal is to allow more structure in queries, such as the
//! relational expressions … R1(e1 ∈ T1, e2 ∈ T2) ∧ R2(e2 ∈ T2, E3 ∈ T3)
//! (i.e., join) … tagging tables with entities and types lets us express
//! precise join queries without depending on fuzzy text matches. This is
//! left for future work."
//!
//! Because cells are annotated with *entity ids*, the join variable `e2`
//! can be matched across different tables exactly: stage one retrieves
//! `e2` candidates with `R2(e2, E3)`, stage two retrieves `e1` answers
//! with `R1(e1, e2)` for each candidate, and evidence multiplies along
//! the chain.

use webtable_catalog::{Catalog, EntityId, RelationId};

use crate::corpus::AnnotatedCorpus;
use crate::index::SearchIndex;
use crate::query::{typed_search_impl, AnswerKey, EntityQuery, RankedAnswer};

/// A two-hop join query: find `(e1, e2)` with `R1(e1, e2) ∧ R2(e2, E3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinQuery {
    /// First relation, `R1(T1, T2)`; answers `e1` come from its left role.
    pub r1: RelationId,
    /// Second relation, `R2(T2, T3)`; its left role is the join variable.
    pub r2: RelationId,
    /// The given entity `E3` (right role of `R2`).
    pub e3: EntityId,
}

/// One join answer: the pair and the multiplied evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinAnswer {
    /// The outer answer `e1` (entity or text, as in single-hop search).
    pub e1: AnswerKey,
    /// The join entity `e2` (must be resolved — text can't join).
    pub e2: EntityId,
    /// Combined evidence: `score(e2 | R2, E3) · score(e1 | R1, e2)`.
    pub score: f64,
}

/// Executes a join query over the annotated corpus using the Type+Rel
/// processor for both hops. `mid_k` bounds the number of join-variable
/// candidates explored (best-first).
#[deprecated(since = "0.2.0", note = "use `SearchEngine::search` with `Query::Join`")]
pub fn join_search(
    catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    q: &JoinQuery,
    mid_k: usize,
) -> Vec<JoinAnswer> {
    join_search_impl(catalog, index, corpus, q, mid_k)
}

/// The join processor body; shared by the deprecated free function and
/// [`SearchEngine::search`](crate::SearchEngine::search).
pub(crate) fn join_search_impl(
    catalog: &Catalog,
    index: &SearchIndex,
    corpus: &AnnotatedCorpus,
    q: &JoinQuery,
    mid_k: usize,
) -> Vec<JoinAnswer> {
    let rel1 = catalog.relation(q.r1);
    let rel2 = catalog.relation(q.r2);
    // Stage 1: e2 candidates with R2(e2, E3).
    let stage1 = EntityQuery { relation: q.r2, t1: rel2.left_type, t2: rel2.right_type, e2: q.e3 };
    let mids: Vec<(EntityId, f64)> = typed_search_impl(index, corpus, &stage1, true)
        .into_iter()
        .filter_map(|a| match a.key {
            // Only resolved entities can act as join keys — exactly the
            // paper's point about precise joins.
            AnswerKey::Entity(e) => Some((e, a.score)),
            _ => None,
        })
        .take(mid_k)
        .collect();

    // Stage 2: for each e2, find e1 with R1(e1, e2).
    let mut out: Vec<JoinAnswer> = Vec::new();
    for (e2, mid_score) in mids {
        let stage2 = EntityQuery { relation: q.r1, t1: rel1.left_type, t2: rel1.right_type, e2 };
        for RankedAnswer { key, score } in typed_search_impl(index, corpus, &stage2, true) {
            out.push(JoinAnswer { e1: key, e2, score: mid_score * score });
        }
    }
    out.sort_unstable_by(|a, b| {
        b.score.total_cmp(&a.score).then(a.e1.cmp(&b.e1)).then(a.e2.cmp(&b.e2))
    });
    out
}

/// Oracle relevance for a join query: all `(e1, e2)` pairs with both
/// relation tuples present.
pub fn join_truth(oracle: &Catalog, q: &JoinQuery) -> Vec<(EntityId, EntityId)> {
    let rel2 = oracle.relation(q.r2);
    let rel1 = oracle.relation(q.r1);
    let mut out = Vec::new();
    for &e2 in rel2.lefts_of(q.e3) {
        for &e1 in rel1.lefts_of(e2) {
            out.push((e1, e2));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use webtable_catalog::{generate_world, WorldConfig};
    use webtable_core::Annotator;
    use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

    use super::*;

    #[test]
    fn join_finds_two_hop_facts() {
        // "movies directed by people born in city X":
        //   directed(movie, director) ∧ bornIn(director, X)
        let world =
            generate_world(&WorldConfig { seed: 3, scale: 0.3, ..Default::default() }).unwrap();
        let annotator = Annotator::new(Arc::clone(&world.catalog));
        let mut gen = TableGenerator::new(&world, NoiseConfig::wiki(), TruthMask::full(), 61);
        let mut tables = Vec::new();
        for _ in 0..14 {
            tables.push(gen.gen_table_for_relation(world.relations.directed, 14).table);
        }
        for _ in 0..14 {
            tables.push(gen.gen_table_for_relation(world.relations.born_in, 16).table);
        }
        let annotations =
            annotator.run(&webtable_core::AnnotateRequest::new(&tables).workers(2)).annotations;
        let corpus = AnnotatedCorpus::from_parts(tables, annotations);
        let index = SearchIndex::build(&corpus, &world.catalog);

        // Pick a city that actually yields a two-hop answer in the oracle.
        let born_in = world.oracle.relation(world.relations.born_in);
        let mut chosen = None;
        for &(_, city) in &born_in.tuples {
            let q =
                JoinQuery { r1: world.relations.directed, r2: world.relations.born_in, e3: city };
            if !join_truth(&world.oracle, &q).is_empty() {
                chosen = Some(q);
                break;
            }
        }
        let q = chosen.expect("some city has a director with movies");
        let truth = join_truth(&world.oracle, &q);
        assert!(!truth.is_empty());

        let answers = join_search_impl(&world.catalog, &index, &corpus, &q, 20);
        // Determinism and ranking.
        let again = join_search_impl(&world.catalog, &index, &corpus, &q, 20);
        assert_eq!(answers, again);
        for w in answers.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        // Any resolved answer pair must have a plausible join var: e2 was
        // retrieved as a born-in-X candidate; the pair is *correct* when it
        // appears in the oracle. With a small corpus we only require that
        // the machinery produces joins, and that *if* a true pair is
        // present in the corpus both hops can connect it.
        let _any_true = answers.iter().any(|a| match a.e1 {
            AnswerKey::Entity(e1) => truth.contains(&(e1, a.e2)),
            _ => false,
        });
        // (Coverage of the specific city in the random corpus is not
        // guaranteed; the assertion suite for precision lives below.)
    }

    #[test]
    fn join_truth_composes_relations() {
        let world = generate_world(&WorldConfig::tiny(9)).unwrap();
        let adapted = world.oracle.relation(world.relations.adapted_from);
        let Some(&(_, novel)) = adapted.tuples.first() else { return };
        // movies adapted from novels written by X:
        //   adaptedFrom(movie, novel) ∧ wrote(novel, novelist)
        let wrote = world.oracle.relation(world.relations.wrote);
        let Some(author) = wrote.rights_of(novel).first().copied() else { return };
        let q =
            JoinQuery { r1: world.relations.adapted_from, r2: world.relations.wrote, e3: author };
        let truth = join_truth(&world.oracle, &q);
        // Every pair must satisfy both hops in the oracle.
        for (e1, e2) in truth {
            assert!(world.oracle.has_tuple(world.relations.adapted_from, e1, e2));
            assert!(world.oracle.has_tuple(world.relations.wrote, e2, author));
        }
    }

    #[test]
    fn text_answers_cannot_join() {
        // The join key must be a resolved entity: a corpus whose middle
        // column annotations failed produces no joins (rather than fuzzy
        // text matches) — the paper's "precise join" point.
        let world = generate_world(&WorldConfig::tiny(10)).unwrap();
        let _annotator = Annotator::new(Arc::clone(&world.catalog));
        let corpus = AnnotatedCorpus::from_parts(Vec::new(), Vec::new());
        let index = SearchIndex::build(&corpus, &world.catalog);
        let q = JoinQuery {
            r1: world.relations.directed,
            r2: world.relations.born_in,
            e3: webtable_catalog::EntityId(0),
        };
        assert!(join_search_impl(&world.catalog, &index, &corpus, &q, 5).is_empty());
    }
}

//! Wire format for the search front door: [`Query`] in,
//! [`RankedAnswer`]s out, on the same dependency-free JSON
//! ([`webtable_core::wire`]) the annotate path uses.
//!
//! ```json
//! // Query — `kind` selects the processor
//! {"kind": "baseline", "relation": 1, "t1": 2, "t2": 3, "e2": 4}
//! {"kind": "typed", "relation": 1, "t1": 2, "t2": 3, "e2": 4,
//!  "use_relations": true}
//! {"kind": "join", "r1": 1, "r2": 2, "e3": 9, "mid_k": 5}
//! {"kind": "tables", "q": "films directed by", "k": 10}
//! {"kind": "populate_rows", "seeds": [4, 9], "k": 10}
//! {"kind": "populate_columns", "seeds": [4, 9], "k": 10}
//! {"kind": "related", "entity": 4, "relation": 1, "k": 10}
//!
//! // Search results
//! {"answers": [{"entity": 17, "score": 3.5},
//!              {"text": "uncle albert", "score": 1.0},
//!              {"table": 12, "score": 0.8},
//!              {"column": "director", "type": 3, "score": 1.0}]}
//! ```
//!
//! Unknown `kind`s are a schema error — the enum is `#[non_exhaustive]`,
//! so new query kinds appear here (and only here) as new names.

use webtable_catalog::{EntityId, RelationId, TypeId};
use webtable_core::wire::{Json, WireError};

use crate::engine::Query;
use crate::join::JoinQuery;
use crate::query::{AnswerKey, EntityQuery, RankedAnswer};

fn schema_err(msg: impl Into<String>) -> WireError {
    WireError { msg: msg.into(), offset: 0 }
}

fn id_field(j: &Json, key: &str) -> Result<u32, WireError> {
    j.get(key)
        .and_then(Json::as_u64)
        .filter(|v| *v <= u32::MAX as u64)
        .ok_or_else(|| schema_err(format!("field `{key}` must be a u32 id")))
        .map(|v| v as u32)
}

fn entity_query_to_pairs(q: &EntityQuery) -> Vec<(String, Json)> {
    vec![
        ("relation".into(), Json::u64(q.relation.0 as u64)),
        ("t1".into(), Json::u64(q.t1.0 as u64)),
        ("t2".into(), Json::u64(q.t2.0 as u64)),
        ("e2".into(), Json::u64(q.e2.0 as u64)),
    ]
}

fn entity_query_from_json(j: &Json) -> Result<EntityQuery, WireError> {
    Ok(EntityQuery {
        relation: RelationId(id_field(j, "relation")?),
        t1: TypeId(id_field(j, "t1")?),
        t2: TypeId(id_field(j, "t2")?),
        e2: EntityId(id_field(j, "e2")?),
    })
}

/// Encodes a [`Query`].
pub fn query_to_json(q: &Query) -> Json {
    match *q {
        Query::Baseline(ref eq) => {
            let mut pairs = vec![("kind".to_string(), Json::str("baseline"))];
            pairs.extend(entity_query_to_pairs(eq));
            Json::Obj(pairs)
        }
        Query::Typed { ref query, use_relations } => {
            let mut pairs = vec![("kind".to_string(), Json::str("typed"))];
            pairs.extend(entity_query_to_pairs(query));
            pairs.push(("use_relations".into(), Json::Bool(use_relations)));
            Json::Obj(pairs)
        }
        Query::Join { ref query, mid_k } => Json::Obj(vec![
            ("kind".into(), Json::str("join")),
            ("r1".into(), Json::u64(query.r1.0 as u64)),
            ("r2".into(), Json::u64(query.r2.0 as u64)),
            ("e3".into(), Json::u64(query.e3.0 as u64)),
            ("mid_k".into(), Json::usize(mid_k)),
        ]),
        Query::Tables { ref keywords, k } => Json::Obj(vec![
            ("kind".into(), Json::str("tables")),
            ("q".into(), Json::str(keywords)),
            ("k".into(), Json::usize(k)),
        ]),
        Query::PopulateRows { ref seeds, k } => Json::Obj(vec![
            ("kind".into(), Json::str("populate_rows")),
            ("seeds".into(), seeds_to_json(seeds)),
            ("k".into(), Json::usize(k)),
        ]),
        Query::PopulateColumns { ref seeds, k } => Json::Obj(vec![
            ("kind".into(), Json::str("populate_columns")),
            ("seeds".into(), seeds_to_json(seeds)),
            ("k".into(), Json::usize(k)),
        ]),
        Query::Related { entity, relation, k } => Json::Obj(vec![
            ("kind".into(), Json::str("related")),
            ("entity".into(), Json::u64(entity.0 as u64)),
            ("relation".into(), Json::u64(relation.0 as u64)),
            ("k".into(), Json::usize(k)),
        ]),
    }
}

fn seeds_to_json(seeds: &[EntityId]) -> Json {
    Json::Arr(seeds.iter().map(|e| Json::u64(e.0 as u64)).collect())
}

/// Decodes the shared result-bound field: optional, default 10, bounded
/// like `mid_k`.
fn k_field(j: &Json) -> Result<usize, WireError> {
    match j.get("k") {
        None => Ok(10),
        Some(v) => v
            .as_usize()
            .filter(|&k| (1..=10_000).contains(&k))
            .ok_or_else(|| schema_err("`k` must be an integer in 1..=10000")),
    }
}

/// Decodes a `seeds` array: required, non-empty, at most 10 000 u32 ids.
fn seeds_field(j: &Json) -> Result<Vec<EntityId>, WireError> {
    let arr = j
        .get("seeds")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("`seeds` must be an array of u32 entity ids"))?;
    if arr.is_empty() || arr.len() > 10_000 {
        return Err(schema_err("`seeds` must hold 1..=10000 entity ids"));
    }
    arr.iter()
        .map(|v| {
            v.as_u64()
                .filter(|v| *v <= u32::MAX as u64)
                .map(|v| EntityId(v as u32))
                .ok_or_else(|| schema_err("`seeds` must be an array of u32 entity ids"))
        })
        .collect()
}

/// Decodes a [`Query`].
pub fn query_from_json(j: &Json) -> Result<Query, WireError> {
    let kind = j
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err("query needs a string `kind`"))?;
    match kind {
        "baseline" => Ok(Query::Baseline(entity_query_from_json(j)?)),
        "typed" => {
            let use_relations = match j.get("use_relations") {
                None => true,
                Some(v) => {
                    v.as_bool().ok_or_else(|| schema_err("`use_relations` must be a bool"))?
                }
            };
            Ok(Query::Typed { query: entity_query_from_json(j)?, use_relations })
        }
        "join" => {
            let mid_k = match j.get("mid_k") {
                None => 5,
                Some(v) => v
                    .as_usize()
                    .filter(|&k| (1..=10_000).contains(&k))
                    .ok_or_else(|| schema_err("`mid_k` must be an integer in 1..=10000"))?,
            };
            Ok(Query::Join {
                query: JoinQuery {
                    r1: RelationId(id_field(j, "r1")?),
                    r2: RelationId(id_field(j, "r2")?),
                    e3: EntityId(id_field(j, "e3")?),
                },
                mid_k,
            })
        }
        "tables" => {
            let keywords = j
                .get("q")
                .and_then(Json::as_str)
                .ok_or_else(|| schema_err("`q` must be a keyword string"))?
                .to_string();
            Ok(Query::Tables { keywords, k: k_field(j)? })
        }
        "populate_rows" => Ok(Query::PopulateRows { seeds: seeds_field(j)?, k: k_field(j)? }),
        "populate_columns" => {
            Ok(Query::PopulateColumns { seeds: seeds_field(j)?, k: k_field(j)? })
        }
        "related" => Ok(Query::Related {
            entity: EntityId(id_field(j, "entity")?),
            relation: RelationId(id_field(j, "relation")?),
            k: k_field(j)?,
        }),
        other => Err(schema_err(format!(
            "unknown query kind `{other}` (expected baseline|typed|join|tables|populate_rows|populate_columns|related)"
        ))),
    }
}

/// Decodes a [`Query`] from JSON text.
pub fn decode_query(text: &str) -> Result<Query, WireError> {
    query_from_json(&Json::parse(text)?)
}

/// Encodes a [`Query`] to JSON text.
pub fn encode_query(q: &Query) -> String {
    query_to_json(q).encode()
}

/// Encodes ranked answers — the search endpoint's response body.
pub fn answers_to_json(answers: &[RankedAnswer]) -> Json {
    Json::Obj(vec![(
        "answers".into(),
        Json::Arr(
            answers
                .iter()
                .map(|a| {
                    let mut pairs = match &a.key {
                        AnswerKey::Entity(e) => {
                            vec![("entity".to_string(), Json::u64(e.0 as u64))]
                        }
                        AnswerKey::Text(t) => vec![("text".to_string(), Json::str(t))],
                        AnswerKey::Table(id) => vec![("table".to_string(), Json::u64(*id))],
                        AnswerKey::Column { label, ty } => vec![
                            ("column".to_string(), Json::str(label)),
                            (
                                "type".to_string(),
                                match ty {
                                    Some(t) => Json::u64(t.0 as u64),
                                    None => Json::Null,
                                },
                            ),
                        ],
                    };
                    pairs.push(("score".into(), Json::Num(a.score)));
                    Json::Obj(pairs)
                })
                .collect(),
        ),
    )])
}

/// Decodes ranked answers.
pub fn answers_from_json(j: &Json) -> Result<Vec<RankedAnswer>, WireError> {
    let items = j
        .get("answers")
        .and_then(Json::as_arr)
        .ok_or_else(|| schema_err("missing `answers` array"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let key =
            match (item.get("entity"), item.get("text"), item.get("table"), item.get("column")) {
                (Some(e), None, None, None) => AnswerKey::Entity(EntityId(
                    e.as_u64()
                        .filter(|v| *v <= u32::MAX as u64)
                        .ok_or_else(|| schema_err("`entity` must be a u32 id"))?
                        as u32,
                )),
                (None, Some(t), None, None) => AnswerKey::Text(
                    t.as_str().ok_or_else(|| schema_err("`text` must be a string"))?.to_string(),
                ),
                (None, None, Some(t), None) => AnswerKey::Table(
                    t.as_u64().ok_or_else(|| schema_err("`table` must be a u64 id"))?,
                ),
                (None, None, None, Some(c)) => {
                    let label = c
                        .as_str()
                        .ok_or_else(|| schema_err("`column` must be a string label"))?
                        .to_string();
                    let ty = match item.get("type") {
                        None | Some(Json::Null) => None,
                        Some(v) => Some(TypeId(
                            v.as_u64()
                                .filter(|v| *v <= u32::MAX as u64)
                                .ok_or_else(|| schema_err("`type` must be a u32 id or null"))?
                                as u32,
                        )),
                    };
                    AnswerKey::Column { label, ty }
                }
                _ => {
                    return Err(schema_err(
                        "each answer needs exactly one of `entity`/`text`/`table`/`column`",
                    ))
                }
            };
        let score = item
            .get("score")
            .and_then(Json::as_f64)
            .ok_or_else(|| schema_err("`score` must be a number"))?;
        out.push(RankedAnswer { key, score });
    }
    Ok(out)
}

/// Encodes ranked answers to JSON text.
pub fn encode_answers(answers: &[RankedAnswer]) -> String {
    answers_to_json(answers).encode()
}

/// Decodes ranked answers from JSON text.
pub fn decode_answers(text: &str) -> Result<Vec<RankedAnswer>, WireError> {
    answers_from_json(&Json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_roundtrip_through_the_wire() {
        let eq =
            EntityQuery { relation: RelationId(3), t1: TypeId(1), t2: TypeId(2), e2: EntityId(40) };
        let cases = [
            Query::Baseline(eq),
            Query::Typed { query: eq, use_relations: false },
            Query::Typed { query: eq, use_relations: true },
            Query::Join {
                query: JoinQuery { r1: RelationId(1), r2: RelationId(2), e3: EntityId(7) },
                mid_k: 9,
            },
            Query::Tables { keywords: "films directed by".into(), k: 10 },
            Query::Tables { keywords: String::new(), k: 1 },
            Query::PopulateRows { seeds: vec![EntityId(4), EntityId(9)], k: 10 },
            Query::PopulateColumns { seeds: vec![EntityId(4)], k: 3 },
            Query::Related { entity: EntityId(4), relation: RelationId(1), k: 10 },
        ];
        for q in cases {
            let text = encode_query(&q);
            let back = decode_query(&text).expect("decode");
            assert_eq!(q, back, "{text}");
            assert_eq!(text, encode_query(&back), "encoding must be deterministic");
        }
    }

    #[test]
    fn query_defaults_and_errors() {
        let q = decode_query(r#"{"kind":"typed","relation":1,"t1":2,"t2":3,"e2":4}"#).unwrap();
        assert_eq!(
            q,
            Query::Typed {
                query: EntityQuery {
                    relation: RelationId(1),
                    t1: TypeId(2),
                    t2: TypeId(3),
                    e2: EntityId(4),
                },
                use_relations: true,
            }
        );
        assert!(decode_query(r#"{"kind":"population"}"#).is_err(), "unknown kinds are errors");
        assert!(decode_query(r#"{"relation":1}"#).is_err(), "kind is required");
        assert!(
            decode_query(r#"{"kind":"join","r1":1,"r2":2,"e3":3,"mid_k":0}"#).is_err(),
            "mid_k 0 would search nothing"
        );
    }

    #[test]
    fn retrieval_query_defaults_and_errors() {
        assert_eq!(
            decode_query(r#"{"kind":"tables","q":"films"}"#).unwrap(),
            Query::Tables { keywords: "films".into(), k: 10 },
            "k defaults to 10"
        );
        assert_eq!(
            decode_query(r#"{"kind":"populate_rows","seeds":[7]}"#).unwrap(),
            Query::PopulateRows { seeds: vec![EntityId(7)], k: 10 },
        );
        assert_eq!(
            decode_query(r#"{"kind":"related","entity":4,"relation":1}"#).unwrap(),
            Query::Related { entity: EntityId(4), relation: RelationId(1), k: 10 },
        );
        assert!(decode_query(r#"{"kind":"tables"}"#).is_err(), "q is required");
        assert!(decode_query(r#"{"kind":"tables","q":"x","k":0}"#).is_err(), "k 0 is rejected");
        assert!(
            decode_query(r#"{"kind":"tables","q":"x","k":10001}"#).is_err(),
            "k above the cap is rejected"
        );
        assert!(decode_query(r#"{"kind":"populate_rows"}"#).is_err(), "seeds are required");
        assert!(
            decode_query(r#"{"kind":"populate_rows","seeds":[]}"#).is_err(),
            "empty seeds are rejected"
        );
        assert!(
            decode_query(r#"{"kind":"populate_columns","seeds":["x"]}"#).is_err(),
            "non-numeric seeds are rejected"
        );
        assert!(decode_query(r#"{"kind":"related","entity":4}"#).is_err(), "relation is required");
    }

    #[test]
    fn answers_roundtrip_bitwise() {
        let answers = vec![
            RankedAnswer { key: AnswerKey::Entity(EntityId(17)), score: 3.5 },
            RankedAnswer { key: AnswerKey::Text("uncle albert".into()), score: 1.0 + 2e-13 },
            RankedAnswer { key: AnswerKey::Text(String::new()), score: 0.0 },
            RankedAnswer { key: AnswerKey::Table(12), score: 0.875 },
            RankedAnswer {
                key: AnswerKey::Column { label: "director".into(), ty: Some(TypeId(3)) },
                score: 1.0,
            },
            RankedAnswer { key: AnswerKey::Column { label: "year".into(), ty: None }, score: 0.5 },
        ];
        let text = encode_answers(&answers);
        let back = decode_answers(&text).expect("decode");
        assert_eq!(answers.len(), back.len());
        for (a, b) in answers.iter().zip(&back) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "scores must round-trip bitwise");
        }
        assert_eq!(text, encode_answers(&back));
        assert!(decode_answers(r#"{"answers":[{"score":1}]}"#).is_err());
        assert!(
            decode_answers(r#"{"answers":[{"entity":1,"text":"x","score":1}]}"#).is_err(),
            "entity and text are mutually exclusive"
        );
        assert!(
            decode_answers(r#"{"answers":[{"table":1,"column":"x","score":1}]}"#).is_err(),
            "table and column are mutually exclusive"
        );
        assert!(
            decode_answers(r#"{"answers":[{"column":"x","type":"y","score":1}]}"#).is_err(),
            "column type must be numeric or null"
        );
    }
}

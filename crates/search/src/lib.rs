//! # webtable-search
//!
//! The relational search application of §5: once tables are annotated with
//! entities, types and relations, select-project queries
//! `R(E1 ∈ T1, E2 ∈ T2)` — "all movies directed by X" — can be answered
//! over the open Web corpus.
//!
//! * [`AnnotatedCorpus`] — tables plus machine annotations;
//! * [`SearchIndex`] — text layer (Lucene stand-in) + annotation layer;
//! * [`baseline_search`] — Figure 3 (strings only);
//! * [`typed_search`] — Figure 4 (type annotations, optionally + relations);
//! * [`eval`] — workload sampling and MAP judging against the oracle
//!   (the DBPedia stand-in).

pub mod corpus;
pub mod eval;
pub mod index;
pub mod join;
pub mod query;

pub use corpus::AnnotatedCorpus;
pub use eval::{build_workload, judge, map_over_queries, query_ap, relevant_entities, Workload};
pub use index::{CellRef, ColRef, PairRef, SearchIndex};
pub use join::{join_search, join_truth, JoinAnswer, JoinQuery};
pub use query::{baseline_search, typed_search, AnswerKey, EntityQuery, RankedAnswer};

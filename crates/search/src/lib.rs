//! # webtable-search
//!
//! The relational search application of §5: once tables are annotated with
//! entities, types and relations, select-project queries
//! `R(E1 ∈ T1, E2 ∈ T2)` — "all movies directed by X" — can be answered
//! over the open Web corpus.
//!
//! * [`SearchEngine`] — the front door: owns catalog + corpus + index,
//!   executes every [`Query`] variant through one
//!   [`search`](SearchEngine::search) entry point;
//! * [`AnnotatedCorpus`] — tables plus machine annotations;
//! * [`SearchIndex`] — text layer (Lucene stand-in) + annotation layer;
//! * [`retrieval`] — table-level keyword retrieval over a [`TableIndex`];
//! * [`augment`] — row/column population and entity-relationship queries;
//! * [`eval`] — workload sampling and MAP judging against the oracle
//!   (the DBPedia stand-in).
//!
//! The former free-function processors (`baseline_search` — Figure 3,
//! `typed_search` — Figure 4, `join_search`) are deprecated wrappers over
//! the engine's processor bodies.

pub mod augment;
pub mod corpus;
pub mod engine;
pub mod eval;
pub mod index;
pub mod join;
pub mod query;
pub mod retrieval;
pub mod wire;

pub use augment::{populate_columns, populate_rows, related_search};
pub use corpus::AnnotatedCorpus;
pub use engine::{Query, SearchEngine};
pub use eval::{build_workload, judge, map_over_queries, query_ap, relevant_entities, Workload};
pub use index::{CellRef, ColRef, PairRef, SearchIndex};
#[allow(deprecated)]
pub use join::join_search;
pub use join::{join_truth, JoinAnswer, JoinQuery};
#[allow(deprecated)]
pub use query::{baseline_search, typed_search};
pub use query::{AnswerKey, EntityQuery, RankedAnswer};
pub use retrieval::TableIndex;

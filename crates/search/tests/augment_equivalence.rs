//! Equivalence and property pins for the retrieval & augmentation
//! subsystem: annotation worker count never changes any answer, results
//! are deterministic across engine rebuilds, and the wire codecs
//! round-trip every representable query and answer.

use std::sync::Arc;

use proptest::prelude::*;
use webtable_catalog::{generate_world, EntityId, RelationId, TypeId, WorldConfig};
use webtable_core::Annotator;
use webtable_search::wire::{decode_answers, decode_query, encode_answers, encode_query};
use webtable_search::{AnswerKey, Query, RankedAnswer, SearchEngine};
use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

fn build_engine(seed: u64, workers: usize) -> (webtable_catalog::World, SearchEngine) {
    let w = generate_world(&WorldConfig::tiny(seed)).unwrap();
    let annotator = Annotator::new(Arc::clone(&w.catalog));
    let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), seed ^ 0x5eed);
    let mut tables = Vec::new();
    for _ in 0..5 {
        tables.push(g.gen_table_for_relation(w.relations.directed, 9).table);
    }
    for _ in 0..3 {
        tables.push(g.gen_table_for_relation(w.relations.born_in, 7).table);
    }
    let engine = SearchEngine::from_tables(&annotator, tables, workers);
    (w, engine)
}

/// The retrieval/augmentation workload over a built engine: one query of
/// each new kind, seeded from entities that actually occur.
fn workload(w: &webtable_catalog::World, engine: &SearchEngine) -> Vec<Query> {
    let rel = w.oracle.relation(w.relations.directed);
    let mut seeds: Vec<EntityId> = rel
        .tuples
        .iter()
        .map(|&(m, _)| m)
        .filter(|&m| !engine.index().cells_of_entity(m).is_empty())
        .collect();
    seeds.sort_unstable();
    seeds.dedup();
    seeds.truncate(2);
    assert!(!seeds.is_empty(), "no annotated seed entities");
    vec![
        Query::Tables { keywords: "movie director born".into(), k: 8 },
        Query::PopulateRows { seeds: seeds.clone(), k: 8 },
        Query::PopulateColumns { seeds: seeds.clone(), k: 8 },
        Query::Related { entity: seeds[0], relation: w.relations.directed, k: 8 },
    ]
}

/// Worker count parallelizes annotation, never results: every new query
/// kind answers byte-identically over engines annotated with 1 vs 3
/// workers.
#[test]
fn answers_are_worker_count_invariant() {
    let (w1, e1) = build_engine(7, 1);
    let (_, e3) = build_engine(7, 3);
    for q in workload(&w1, &e1) {
        let a = encode_answers(&e1.search(&q));
        let b = encode_answers(&e3.search(&q));
        assert_eq!(a, b, "worker count changed answers for {q:?}");
        assert_ne!(a, r#"{"answers":[]}"#, "workload query must have answers: {q:?}");
    }
}

/// Rebuilding the engine from the same inputs reproduces every answer
/// byte-for-byte (the determinism the snapshot swap story rests on).
#[test]
fn rebuilds_are_byte_identical() {
    let (w, e_a) = build_engine(13, 2);
    let (_, e_b) = build_engine(13, 2);
    for q in workload(&w, &e_a) {
        assert_eq!(
            encode_answers(&e_a.search(&q)),
            encode_answers(&e_b.search(&q)),
            "rebuild changed answers for {q:?}"
        );
    }
}

/// `k` truncates a stable ranking: the top-k answers are always a prefix
/// of the top-(k+n) answers.
#[test]
fn k_is_a_prefix_bound() {
    let (w, engine) = build_engine(7, 2);
    for q in workload(&w, &engine) {
        let wide = engine.search(&with_k(&q, 50));
        for k in [1usize, 3, 8] {
            let narrow = engine.search(&with_k(&q, k));
            assert_eq!(
                narrow,
                wide[..k.min(wide.len())].to_vec(),
                "top-{k} must be a prefix for {q:?}"
            );
        }
    }
}

fn with_k(q: &Query, k: usize) -> Query {
    match q.clone() {
        Query::Tables { keywords, .. } => Query::Tables { keywords, k },
        Query::PopulateRows { seeds, .. } => Query::PopulateRows { seeds, k },
        Query::PopulateColumns { seeds, .. } => Query::PopulateColumns { seeds, k },
        Query::Related { entity, relation, .. } => Query::Related { entity, relation, k },
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tables_queries_roundtrip(kw in "\\PC{0,40}", k in 1usize..=10_000) {
        let q = Query::Tables { keywords: kw, k };
        let text = encode_query(&q);
        let back = decode_query(&text).unwrap();
        prop_assert_eq!(&q, &back);
        prop_assert_eq!(text, encode_query(&back));
    }

    #[test]
    fn populate_queries_roundtrip(
        raw in proptest::collection::vec(any::<u32>(), 1..20),
        k in 1usize..=10_000,
        columns in any::<bool>(),
    ) {
        let seeds: Vec<EntityId> = raw.into_iter().map(EntityId).collect();
        let q = if columns {
            Query::PopulateColumns { seeds, k }
        } else {
            Query::PopulateRows { seeds, k }
        };
        let text = encode_query(&q);
        prop_assert_eq!(&q, &decode_query(&text).unwrap());
    }

    #[test]
    fn related_queries_roundtrip(e in any::<u32>(), r in any::<u32>(), k in 1usize..=10_000) {
        let q = Query::Related { entity: EntityId(e), relation: RelationId(r), k };
        let text = encode_query(&q);
        prop_assert_eq!(&q, &decode_query(&text).unwrap());
    }

    #[test]
    fn answer_keys_roundtrip_bitwise(
        table in any::<u32>(),
        label in "[a-z ]{0,24}",
        has_ty in any::<bool>(),
        ty_raw in any::<u32>(),
        score in any::<f64>(),
    ) {
        prop_assume!(score.is_finite());
        let answers = vec![
            RankedAnswer { key: AnswerKey::Table(table as u64), score },
            RankedAnswer {
                key: AnswerKey::Column { label, ty: has_ty.then_some(TypeId(ty_raw)) },
                score: score / 2.0,
            },
        ];
        let text = encode_answers(&answers);
        let back = decode_answers(&text).unwrap();
        prop_assert_eq!(answers.len(), back.len());
        for (a, b) in answers.iter().zip(&back) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        prop_assert_eq!(text, encode_answers(&back));
    }
}

//! Front-door equivalence on the search side: every deprecated free
//! processor (`baseline_search`, `typed_search`, `join_search`) must
//! return exactly what `SearchEngine::search` returns for the matching
//! `Query`, and the precomputed `columns_of_type` postings must equal the
//! old on-the-fly subtype scan.
//!
//! Deprecated calls here are the point of the suite.
#![allow(deprecated)]

use std::sync::{Arc, OnceLock};

use webtable_catalog::{Catalog, TypeId, World};
use webtable_core::Annotator;
use webtable_search::{
    baseline_search, build_workload, join_search, typed_search, AnswerKey, ColRef, EntityQuery,
    JoinQuery, Query, SearchEngine,
};
use webtable_tables::{NoiseConfig, TableGenerator, TruthMask};

fn fixture() -> &'static (World, SearchEngine) {
    static FIXTURE: OnceLock<(World, SearchEngine)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = webtable_catalog::generate_world(&webtable_catalog::WorldConfig::tiny(43)).unwrap();
        let annotator = Annotator::new(Arc::clone(&w.catalog));
        let mut g = TableGenerator::new(&w, NoiseConfig::wiki(), TruthMask::full(), 13);
        let mut tables = Vec::new();
        for _ in 0..8 {
            tables.push(g.gen_table_for_relation(w.relations.directed, 10).table);
        }
        for _ in 0..6 {
            tables.push(g.gen_table_for_relation(w.relations.born_in, 10).table);
        }
        let engine = SearchEngine::from_tables(&annotator, tables, 2);
        (w, engine)
    })
}

fn queries(w: &World) -> Vec<EntityQuery> {
    let workload = build_workload(w, &[w.relations.directed], 6, 3);
    workload.per_relation[0].1.clone()
}

#[test]
fn baseline_search_matches_engine() {
    let (w, engine) = fixture();
    for q in queries(w) {
        let legacy = baseline_search(&w.catalog, engine.index(), engine.corpus(), &q);
        let front = engine.search(&Query::Baseline(q));
        assert_eq!(legacy, front, "baseline {q:?}");
    }
}

#[test]
fn typed_search_matches_engine_both_modes() {
    let (w, engine) = fixture();
    for q in queries(w) {
        for use_relations in [false, true] {
            let legacy =
                typed_search(&w.catalog, engine.index(), engine.corpus(), &q, use_relations);
            let front = engine.search(&Query::Typed { query: q, use_relations });
            assert_eq!(legacy, front, "typed use_relations={use_relations} {q:?}");
        }
    }
}

#[test]
fn join_search_matches_engine_projection() {
    let (w, engine) = fixture();
    // Pick a join that the corpus can express: directed ∘ born_in.
    let born_in = w.oracle.relation(w.relations.born_in);
    for &(_, city) in born_in.tuples.iter().take(8) {
        let jq = JoinQuery { r1: w.relations.directed, r2: w.relations.born_in, e3: city };
        let legacy = join_search(&w.catalog, engine.index(), engine.corpus(), &jq, 10);
        let front = engine.search(&Query::Join { query: jq, mid_k: 10 });
        // The engine projects join answers onto e1, keeping the best
        // chain per answer — verify against the same projection of the
        // legacy output.
        let mut want: Vec<(AnswerKey, f64)> = Vec::new();
        for a in legacy {
            if !want.iter().any(|(k, _)| *k == a.e1) {
                want.push((a.e1, a.score));
            }
        }
        let got: Vec<(AnswerKey, f64)> = front.into_iter().map(|a| (a.key, a.score)).collect();
        assert_eq!(want, got, "join projection for e3={city:?}");
    }
}

/// The pre-PR-5 `columns_of_type`, reimplemented verbatim as the oracle:
/// scan every annotated type, test subtype-hood, merge, sort.
fn columns_of_type_reference(
    engine: &SearchEngine,
    catalog: &Catalog,
    query_type: TypeId,
) -> Vec<ColRef> {
    let mut out: Vec<ColRef> = Vec::new();
    for ti in 0..catalog.num_types() {
        let t = TypeId(ti as u32);
        if catalog.is_subtype(t, query_type) {
            // The precomputed posting for a *leaf* lookup of t itself is
            // exactly the raw annotated set when t has no subtypes; use
            // the corpus annotations directly to stay independent of the
            // index internals.
            for (table_i, ann) in engine.corpus().annotations.iter().enumerate() {
                for (&c, &ty) in &ann.column_types {
                    if ty == Some(t) {
                        out.push((table_i as u32, c as u16));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn precomputed_type_postings_match_subtype_scan() {
    let (w, engine) = fixture();
    let catalog = &w.catalog;
    let mut nonempty = 0usize;
    for ti in 0..catalog.num_types() {
        let t = TypeId(ti as u32);
        let want = columns_of_type_reference(engine, catalog, t);
        let got = engine.index().columns_of_type(t);
        assert_eq!(got, want.as_slice(), "type {ti}");
        nonempty += usize::from(!want.is_empty());
    }
    assert!(nonempty > 0, "the corpus must annotate some columns");
}

//! # webtable
//!
//! A from-scratch Rust implementation of **“Annotating and Searching Web
//! Tables Using Entities, Types and Relationships”** (Girija Limaye, Sunita
//! Sarawagi, Soumen Chakrabarti; VLDB 2010): a collective annotator that
//! simultaneously labels table cells with entities, columns with types,
//! and column pairs with binary relations from a catalog, plus the
//! relational search application those annotations enable.
//!
//! This umbrella crate re-exports the workspace's sub-crates:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`catalog`] | `webtable-catalog` | YAGO-like catalog: type DAG, entities, lemmas, relations; synthetic world generator |
//! | [`text`] | `webtable-text` | tokenization, TFIDF, similarity kernels, lemma index |
//! | [`tables`] | `webtable-tables` | source-table model, noise model, dataset generators, HTML extraction |
//! | [`factorgraph`] | `webtable-factorgraph` | generic factor graph + loopy BP (max/sum-product) + exact inference |
//! | [`core`] | `webtable-core` | the collective annotator: features `f1`–`f5`, inference, baselines |
//! | [`learning`] | `webtable-learning` | structured max-margin training of `w1`–`w5` |
//! | [`search`] | `webtable-search` | annotated-corpus index + select-project query processors |
//! | [`server`] | `webtable-server` | `webtable-serve`: HTTP serving with zero-downtime generation swaps |
//! | [`eval`] | `webtable-eval` | accuracy/F1/MAP metrics and report rendering |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use webtable::catalog::{generate_world, WorldConfig};
//! use webtable::core::{AnnotateRequest, Annotator};
//! use webtable::tables::{NoiseConfig, TableGenerator, TruthMask};
//!
//! // A miniature synthetic world standing in for YAGO + the Web corpus.
//! let world = generate_world(&WorldConfig::tiny(42)).unwrap();
//! let annotator = Annotator::new(Arc::clone(&world.catalog));
//!
//! // Render a noisy web table expressing `directed(movie, director)`.
//! let mut gen = TableGenerator::new(&world, NoiseConfig::wiki(), TruthMask::full(), 1);
//! let labeled = gen.gen_table_for_relation(world.relations.directed, 6);
//!
//! // Collectively annotate cells, columns and column pairs through the
//! // request/response front door.
//! let response = annotator.run(&AnnotateRequest::one(&labeled.table));
//! let annotation = &response.annotations[0];
//! assert_eq!(annotation.column_types.len(), labeled.table.num_cols());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/experiments` for the
//! harness regenerating every table and figure of the paper.

pub use webtable_catalog as catalog;
pub use webtable_core as core;
pub use webtable_eval as eval;
pub use webtable_factorgraph as factorgraph;
pub use webtable_learning as learning;
pub use webtable_search as search;
pub use webtable_server as server;
pub use webtable_tables as tables;
pub use webtable_text as text;

//! Workspace wiring smoke test: the quickstart-style annotate → search
//! round-trip on a small generated world, touching every layer the umbrella
//! crate re-exports (catalog → tables → core → search → eval). This is the
//! test CI leans on to catch broken cross-crate plumbing fast.

use std::sync::Arc;

use webtable::catalog::{generate_world, WorldConfig};
use webtable::core::{AnnotateRequest, Annotator};
use webtable::eval::entity_accuracy;
use webtable::search::{build_workload, map_over_queries, Query, SearchEngine};
use webtable::tables::{NoiseConfig, TableGenerator, TruthMask};

#[test]
fn annotate_then_search_round_trip() {
    // 1. Catalog layer: a miniature YAGO-like world.
    let world = generate_world(&WorldConfig::tiny(2026)).unwrap();
    assert!(world.catalog.num_entities() > 0, "world must contain entities");

    // 2. Tables layer: render noisy tables expressing `directed`.
    let mut gen = TableGenerator::new(&world, NoiseConfig::wiki(), TruthMask::full(), 7);
    let labeled: Vec<_> =
        (0..4).map(|_| gen.gen_table_for_relation(world.relations.directed, 8)).collect();

    // 3. Core layer: collectively annotate; sanity-check annotation shape
    // and that predictions beat the trivial all-na annotator on gold cells.
    let annotator = Annotator::new(Arc::clone(&world.catalog));
    let mut correct = 0usize;
    let mut total = 0usize;
    for lt in &labeled {
        let ann = annotator.run(&AnnotateRequest::one(&lt.table)).into_single().0;
        assert_eq!(ann.column_types.len(), lt.table.num_cols());
        let acc = entity_accuracy(&ann.cell_entities, &lt.truth.cell_entities);
        correct += acc.correct;
        total += acc.total;
    }
    assert!(total > 0, "ground truth must be recorded");
    assert!(
        correct * 2 > total,
        "entity accuracy {correct}/{total} suspiciously low for wiki noise"
    );

    // 4. Search layer: build the engine over the annotated corpus and
    // answer entity queries through the one front door.
    let tables: Vec<_> = labeled.into_iter().map(|lt| lt.table).collect();
    let engine = SearchEngine::from_tables(&annotator, tables, 2);
    let workload = build_workload(&world, &[world.relations.directed], 4, 5);
    let queries = &workload.per_relation[0].1;
    assert!(!queries.is_empty(), "workload must produce queries");

    // 5. Eval layer: MAP over the workload must show retrieval happening.
    let map = map_over_queries(&world.oracle, queries, |q| {
        engine.search(&Query::Typed { query: *q, use_relations: true })
    });
    assert!(map > 0.0, "typed search must retrieve at least one correct answer (MAP {map})");
}

//! Persistence and extraction round-trips on full generated worlds, plus
//! property tests over the escaping layers.

use proptest::prelude::*;
use webtable::catalog::{generate_world, io, WorldConfig};
use webtable::tables::html::{extract_tables, render_html};
use webtable::tables::{NoiseConfig, TableGenerator, TruthMask};

#[test]
fn generated_catalog_round_trips_through_tsv() {
    let world = generate_world(&WorldConfig::tiny(66)).unwrap();
    let cat = &world.catalog;
    let mut buf = Vec::new();
    io::write_catalog(cat, &mut buf).unwrap();
    let back = io::read_catalog(&buf[..]).unwrap();
    assert_eq!(back.num_types(), cat.num_types());
    assert_eq!(back.num_entities(), cat.num_entities());
    assert_eq!(back.num_relations(), cat.num_relations());
    // Spot-check structure: same extents and distances for sampled pairs.
    for i in (0..cat.num_entities()).step_by(97) {
        let e = webtable::catalog::EntityId(i as u32);
        assert_eq!(back.entity_name(e), cat.entity_name(e));
        assert_eq!(back.types_of(e), cat.types_of(e));
    }
    for i in (0..cat.num_types()).step_by(13) {
        let t = webtable::catalog::TypeId(i as u32);
        assert_eq!(back.extent_size(t), cat.extent_size(t));
        assert_eq!(back.min_entity_dist(t), cat.min_entity_dist(t));
    }
    // Relation tuples survive.
    for b in cat.relation_ids() {
        assert_eq!(back.relation(b).tuples, cat.relation(b).tuples);
        assert_eq!(back.relation(b).cardinality, cat.relation(b).cardinality);
    }
}

#[test]
fn generated_tables_round_trip_through_html() {
    let world = generate_world(&WorldConfig::tiny(67)).unwrap();
    let mut gen = TableGenerator::new(&world, NoiseConfig::web(), TruthMask::full(), 9);
    for lt in gen.gen_corpus(10, 8) {
        let html = render_html(&lt.table);
        let extracted = extract_tables(&html, lt.table.id.0);
        assert_eq!(extracted.len(), 1, "table lost in extraction:\n{html}");
        assert_eq!(extracted[0].rows, lt.table.rows);
        assert_eq!(extracted[0].context, lt.table.context);
        // Headers survive unless entirely absent.
        if lt.table.headers.iter().any(Option::is_some) {
            assert_eq!(extracted[0].headers, lt.table.headers);
        }
    }
}

proptest! {
    #[test]
    fn arbitrary_cell_text_round_trips_through_html(
        cells in proptest::collection::vec("[ -~]{0,30}", 4..8)
    ) {
        // Build a 2-column table from arbitrary printable ASCII.
        let n = cells.len() / 2;
        let rows: Vec<Vec<String>> = (0..n)
            .map(|r| vec![cells[2 * r].clone(), cells[2 * r + 1].clone()])
            .collect();
        let expected: Vec<Vec<String>> = rows
            .iter()
            .map(|row| row.iter().map(|c| c.trim().to_string()).collect())
            .collect();
        let t = webtable::tables::Table::new(
            webtable::tables::TableId(0),
            "ctx",
            vec![Some("A".into()), Some("B".into())],
            rows,
        );
        let html = render_html(&t);
        let parsed = webtable::tables::html::parse_tables(&html);
        prop_assert_eq!(parsed.len(), 1);
        // The parser trims cell whitespace; compare against trimmed rows.
        prop_assert_eq!(&parsed[0].rows, &expected);
    }

    #[test]
    fn catalog_names_round_trip_through_tsv(name in "[a-zA-Z0-9 |%\\t]{1,24}") {
        let mut b = webtable::catalog::CatalogBuilder::new();
        let t = b.add_type("t", &[]).unwrap();
        if b.add_entity(name.clone(), &["alias"], &[t]).is_ok() {
            let cat = b.finish().unwrap();
            let mut buf = Vec::new();
            io::write_catalog(&cat, &mut buf).unwrap();
            let back = io::read_catalog(&buf[..]).unwrap();
            prop_assert!(back.entity_named(&name).is_some());
        }
    }
}

//! Cross-crate integration: the paper's headline ordering (Figure 6) must
//! hold end-to-end on a freshly generated world — Collective beats both
//! baselines on entity accuracy and type F1, and beats Majority on
//! relation F1.

use std::sync::Arc;

use webtable::catalog::{generate_world, WorldConfig};
use webtable::core::{
    annotate_collective, lca, majority, AnnotateRequest, Annotator, AnnotatorConfig,
};
use webtable::eval::{entity_accuracy, point_types_as_sets, relation_f1, type_f1, Accuracy, SetF1};
use webtable::tables::{NoiseConfig, TableGenerator, TruthMask};

#[test]
fn collective_beats_baselines_end_to_end() {
    let world = generate_world(&WorldConfig::tiny(13)).unwrap();
    let annotator = Annotator::new(Arc::clone(&world.catalog));
    let cfg = AnnotatorConfig::default();
    let mut gen = TableGenerator::new(&world, NoiseConfig::web(), TruthMask::full(), 77);
    let tables = gen.gen_corpus(15, 12);

    let mut ent = [Accuracy::default(); 3]; // lca, majority, collective
    let mut typ = [SetF1::default(); 3];
    let mut rel = [SetF1::default(); 2]; // majority, collective
    for lt in &tables {
        let l = lca(&world.catalog, &annotator.index, &cfg, &annotator.weights, &lt.table);
        let m = majority(&world.catalog, &annotator.index, &cfg, &annotator.weights, &lt.table);
        let c = annotate_collective(
            &world.catalog,
            &annotator.index,
            &cfg,
            &annotator.weights,
            &lt.table,
        );
        ent[0].add(entity_accuracy(&l.cell_entities, &lt.truth.cell_entities));
        ent[1].add(entity_accuracy(&m.cell_entities, &lt.truth.cell_entities));
        ent[2].add(entity_accuracy(&c.cell_entities, &lt.truth.cell_entities));
        typ[0].add(type_f1(&l.column_types, &lt.truth.column_types));
        typ[1].add(type_f1(&m.column_types, &lt.truth.column_types));
        typ[2].add(type_f1(&point_types_as_sets(&c.column_types), &lt.truth.column_types));
        rel[0].add(relation_f1(&m.relations, &lt.truth.relations));
        rel[1].add(relation_f1(&c.relations, &lt.truth.relations));
    }

    assert!(ent[2].total > 200, "need a meaningful sample, got {}", ent[2].total);
    assert!(
        ent[2].fraction() > ent[0].fraction(),
        "collective entity {:.3} must beat LCA {:.3}",
        ent[2].fraction(),
        ent[0].fraction()
    );
    assert!(
        ent[2].fraction() > ent[1].fraction(),
        "collective entity {:.3} must beat Majority {:.3}",
        ent[2].fraction(),
        ent[1].fraction()
    );
    assert!(
        typ[2].f1() > typ[0].f1() && typ[2].f1() > typ[1].f1(),
        "collective type F1 {:.3} must beat LCA {:.3} and Majority {:.3}",
        typ[2].f1(),
        typ[0].f1(),
        typ[1].f1()
    );
    // At full experiment scale Collective wins relations clearly (see
    // EXPERIMENTS.md); on this tiny world sampling variance allows a small
    // inversion, so the integration test only demands comparability.
    assert!(
        rel[1].f1() + 0.08 >= rel[0].f1(),
        "collective relation F1 {:.3} must be comparable to Majority {:.3}",
        rel[1].f1(),
        rel[0].f1()
    );
}

#[test]
fn annotations_respect_catalog_structure() {
    // Every non-na cell entity must be an instance (in the published
    // catalog) of... not necessarily the column type (the annotator may
    // disagree with itself only through na), so check the weaker joint
    // consistency: if both a cell and its column are annotated, the φ3
    // candidate construction guarantees the entity was a candidate under
    // the type's column — i.e. entity and type co-occur in the catalog's
    // candidate space. Here we check the entity is simply a valid id and
    // the type a valid id, and that relations connect existing columns.
    let world = generate_world(&WorldConfig::tiny(14)).unwrap();
    let annotator = Annotator::new(Arc::clone(&world.catalog));
    let mut gen = TableGenerator::new(&world, NoiseConfig::wiki(), TruthMask::full(), 3);
    for lt in gen.gen_corpus(5, 10) {
        let ann = annotator.run(&AnnotateRequest::one(&lt.table)).into_single().0;
        for e in ann.cell_entities.values().flatten() {
            assert!(e.index() < world.catalog.num_entities());
        }
        for t in ann.column_types.values().flatten() {
            assert!(t.index() < world.catalog.num_types());
        }
        for (&(c1, c2), rel) in &ann.relations {
            assert!(c1 < lt.table.num_cols() && c2 < lt.table.num_cols());
            if let Some(b) = rel {
                assert!(b.index() < world.catalog.num_relations());
            }
        }
    }
}

#[test]
fn mean_candidate_count_is_in_paper_band() {
    // §6.1.1: "the typical number of entities between which the algorithms
    // had to choose for each cell was around 7-8". Our generator is tuned
    // to land in a comparable band (with K = 8, the mean over ambiguous
    // cells must be well above 1 and at most 8).
    use webtable::core::TableCandidates;
    let world = generate_world(&WorldConfig { seed: 5, ..Default::default() }).unwrap();
    let annotator = Annotator::new(Arc::clone(&world.catalog));
    let cfg = AnnotatorConfig::default();
    let mut gen = TableGenerator::new(&world, NoiseConfig::web(), TruthMask::full(), 8);
    let mut total = 0.0;
    let mut n = 0usize;
    for lt in gen.gen_corpus(10, 20) {
        let cands = TableCandidates::build(&world.catalog, &annotator.index, &lt.table, &cfg);
        total += cands.mean_entity_candidates();
        n += 1;
    }
    let mean = total / n as f64;
    assert!(mean > 2.0 && mean <= 8.0, "mean candidate count {mean:.2} out of band");
}

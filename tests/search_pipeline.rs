//! Cross-crate integration: the Figure 9 ordering — annotations improve
//! search MAP, relation annotations don't hurt — on a small live corpus.

use std::sync::Arc;

use webtable::catalog::{generate_world, WorldConfig};
use webtable::core::Annotator;
use webtable::search::{build_workload, map_over_queries, Query, SearchEngine};
use webtable::tables::{NoiseConfig, TableGenerator, TruthMask};

#[test]
fn typed_search_beats_baseline_map() {
    let world =
        generate_world(&WorldConfig { seed: 23, scale: 0.3, ..Default::default() }).unwrap();
    let annotator = Annotator::new(Arc::clone(&world.catalog));
    let mut gen = TableGenerator::new(&world, NoiseConfig::wiki(), TruthMask::full(), 31);
    let rels = world.relations.figure13();
    let mut tables = Vec::new();
    for &b in &rels {
        for _ in 0..6 {
            tables.push(gen.gen_table_for_relation(b, 12).table);
        }
    }
    // Schema-twin decoys: tables whose column types match the queries but
    // whose relation differs (narratedBy vs actedIn etc.). These are what
    // make type-only retrieval imprecise, as on the real Web.
    for b in [
        world.relations.narrated_by,
        world.relations.wrote_screenplay,
        world.relations.translated,
        world.relations.minority_language,
        world.relations.distributed_by,
    ] {
        for _ in 0..4 {
            tables.push(gen.gen_table_for_relation(b, 10).table);
        }
    }
    let engine = SearchEngine::from_tables(&annotator, tables, 2);
    let workload = build_workload(&world, &rels, 8, 3);

    let mut base_sum = 0.0;
    let mut type_sum = 0.0;
    let mut rel_sum = 0.0;
    for (_, queries) in &workload.per_relation {
        base_sum +=
            map_over_queries(&world.oracle, queries, |q| engine.search(&Query::Baseline(*q)));
        type_sum += map_over_queries(&world.oracle, queries, |q| {
            engine.search(&Query::Typed { query: *q, use_relations: false })
        });
        rel_sum += map_over_queries(&world.oracle, queries, |q| {
            engine.search(&Query::Typed { query: *q, use_relations: true })
        });
    }
    assert!(
        type_sum > base_sum,
        "type annotations must improve MAP: type {type_sum:.3} vs baseline {base_sum:.3}"
    );
    assert!(
        rel_sum + 0.10 >= type_sum,
        "adding relation annotations must not tank MAP: {rel_sum:.3} vs {type_sum:.3}"
    );
    assert!(rel_sum > 0.0, "type+rel must retrieve something");
}

#[test]
fn search_is_deterministic() {
    let world = generate_world(&WorldConfig::tiny(24)).unwrap();
    let annotator = Annotator::new(Arc::clone(&world.catalog));
    let mut gen = TableGenerator::new(&world, NoiseConfig::wiki(), TruthMask::full(), 31);
    let tables: Vec<_> =
        (0..5).map(|_| gen.gen_table_for_relation(world.relations.directed, 10).table).collect();
    let engine = SearchEngine::from_tables(&annotator, tables, 2);
    let workload = build_workload(&world, &[world.relations.directed], 4, 9);
    for q in &workload.per_relation[0].1 {
        let a = engine.search(&Query::Typed { query: *q, use_relations: true });
        let b = engine.search(&Query::Typed { query: *q, use_relations: true });
        assert_eq!(a, b);
    }
}

//! Reproducibility: the whole pipeline is a pure function of its seeds.

use std::sync::Arc;

use webtable::catalog::{generate_world, WorldConfig};
use webtable::core::{AnnotateRequest, Annotator};
use webtable::tables::{datasets, NoiseConfig, TableGenerator, TruthMask};

#[test]
fn full_pipeline_is_deterministic_per_seed() {
    let run = || {
        let world = generate_world(&WorldConfig::tiny(55)).unwrap();
        let annotator = Annotator::new(Arc::clone(&world.catalog));
        let mut gen = TableGenerator::new(&world, NoiseConfig::web(), TruthMask::full(), 2);
        let tables = gen.gen_corpus(6, 10);
        tables
            .iter()
            .map(|lt| {
                let ann = annotator.run(&AnnotateRequest::one(&lt.table)).into_single().0;
                let mut cells: Vec<_> = ann.cell_entities.into_iter().collect();
                cells.sort_unstable_by_key(|&(k, _)| k);
                let mut types: Vec<_> = ann.column_types.into_iter().collect();
                types.sort_unstable_by_key(|&(k, _)| k);
                (cells, types)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_give_different_worlds() {
    let a = generate_world(&WorldConfig::tiny(1)).unwrap();
    let b = generate_world(&WorldConfig::tiny(2)).unwrap();
    let names_a: Vec<_> = (0..20u32)
        .map(|i| a.catalog.entity_name(webtable::catalog::EntityId(i)).to_string())
        .collect();
    let names_b: Vec<_> = (0..20u32)
        .map(|i| b.catalog.entity_name(webtable::catalog::EntityId(i)).to_string())
        .collect();
    assert_ne!(names_a, names_b);
}

#[test]
fn datasets_are_stable_across_processes() {
    // Dataset summaries act as a cheap fingerprint for cross-version
    // reproducibility of the Figure 5/6 experiments.
    let world = generate_world(&WorldConfig::tiny(42)).unwrap();
    let ds = datasets::wiki_manual(&world, 0.1, 42);
    let s1 = ds.summary();
    let ds2 = datasets::wiki_manual(&world, 0.1, 42);
    let s2 = ds2.summary();
    assert_eq!(s1, s2);
    assert!(s1.entity_annotations > 0);
}

#!/usr/bin/env bash
# Chaos soak for webtable-serve: proves the failure-containment
# invariants against the real binary.
#
#   1. Swap-under-load: repeated promote + hot-swap while concurrent
#      clients hammer /v1/search — every response must be well-formed
#      (zero torn/malformed bodies, zero failed requests).
#   2. Degraded -> recovered: a corrupt corpus makes the swap fail with
#      a typed error and /admin/health reports `degraded` while the old
#      generation keeps serving; restoring the file heals it to `ok`.
#   3. Segment containment: grow a delta index segment, corrupt just
#      that one snapshot — only the publish degrades (typed `snapshot`
#      error); the old generation serves byte-identically until the
#      file is restored, then the v2 manifest swaps in cleanly.
#   4. Crash recovery: a torn MANIFEST plus a stale temp file on
#      startup — the server must recover from MANIFEST.last-good (by
#      then a v2, multi-segment manifest).
#   5. Panic isolation: WEBTABLE_FAULT_PLAN-injected handler panics
#      cost one 500 `internal` each, never a worker.
#
# Usage: chaos_soak.sh <webtable-serve binary> <scratch dir>
set -euo pipefail

BIN=$1
SCRATCH=$2
DATA="$SCRATCH/data"
ADDR=127.0.0.1:8197
SWAPS=5
CLIENTS=3
REQS_PER_CLIENT=40

mkdir -p "$SCRATCH"
rm -rf "$DATA"

say() { echo "==> $*"; }

req() { # method path [body-file] -> body on stdout, fails on non-2xx
  if [ $# -ge 3 ]; then
    "$BIN" client --addr "$ADDR" "$1" "$2" "$(cat "$3")"
  else
    "$BIN" client --addr "$ADDR" "$1" "$2"
  fi
}

say "prepare + serve"
"$BIN" prepare --data "$DATA"
"$BIN" serve --data "$DATA" --addr "$ADDR" > "$SCRATCH/serve1.log" 2>&1 &
SERVE_PID=$!
req GET /health | grep -F '"generation":1'

# ---- Phase 1: swap under load -------------------------------------
say "phase 1: $SWAPS hot-swaps under $CLIENTS concurrent clients"
hammer() {
  local id=$1 out
  for _ in $(seq "$REQS_PER_CLIENT"); do
    # Every single response must be a well-formed answers document.
    if ! out=$("$BIN" client --addr "$ADDR" POST /v1/search "$(cat "$DATA/sample-query.json")"); then
      echo "client $id: request failed: $out" >> "$SCRATCH/hammer-failures"
      return
    fi
    case "$out" in
      '{"answers":['*) ;;
      *) echo "client $id: torn/malformed body: $out" >> "$SCRATCH/hammer-failures"; return ;;
    esac
  done
}
: > "$SCRATCH/hammer-failures"
HAMMER_PIDS=""
for i in $(seq "$CLIENTS"); do
  hammer "$i" &
  HAMMER_PIDS="$HAMMER_PIDS $!"
done
for _ in $(seq "$SWAPS"); do
  "$BIN" promote --data "$DATA" > /dev/null
  req POST /admin/swap | grep -F '"swapped":true' > /dev/null
done
for pid in $HAMMER_PIDS; do wait "$pid"; done
if [ -s "$SCRATCH/hammer-failures" ]; then
  echo "FAIL: malformed or failed responses during swap soak:"
  cat "$SCRATCH/hammer-failures"
  exit 1
fi
GEN=$((1 + SWAPS))
req GET /admin/health | grep -F "\"generation\":$GEN" | grep -F '"status":"ok"'

# ---- Phase 2: degraded -> recovered -------------------------------
say "phase 2: corrupt corpus degrades, restore recovers"
"$BIN" promote --data "$DATA" > /dev/null
cp "$DATA/tables-g2.json" "$SCRATCH/tables-g2.json.orig"
head -c 10 "$SCRATCH/tables-g2.json.orig" > "$DATA/tables-g2.json"
SWAP_OUT=$(req POST /admin/swap || true)
echo "$SWAP_OUT" | grep -F '"code":"corpus"'
req GET /admin/health | grep -F '"status":"degraded"' | grep -F '"last_error":"corpus"'
# The old generation still serves well-formed answers.
req POST /v1/search "$DATA/sample-query.json" | grep -F '"answers":[' > /dev/null
cp "$SCRATCH/tables-g2.json.orig" "$DATA/tables-g2.json"
req POST /admin/swap | grep -F '"swapped":true'
req GET /admin/health | grep -F '"status":"ok"' | grep -F '"last_error":null'
grep -F '"event":"swap_retry"' "$SCRATCH/serve1.log" > /dev/null
grep -F '"event":"swap_failed"' "$SCRATCH/serve1.log" > /dev/null

# ---- Phase 3: segment corruption degrades only the publish --------
say "phase 3: grow a delta segment, corrupt it, restore, publish"
PRE_SEG=$(req POST /v1/search "$DATA/sample-query.json")
"$BIN" grow --data "$DATA" | grep -F 'new segment published' > /dev/null
SEG_GEN=$(grep -F 'generation ' "$DATA/MANIFEST" | awk '{print $2}')
DELTA="$DATA/segment-g$SEG_GEN.snap"
[ -f "$DELTA" ]
cp "$DELTA" "$SCRATCH/delta.snap.orig"
head -c 64 "$SCRATCH/delta.snap.orig" > "$DELTA"
SWAP_OUT=$(req POST /admin/swap || true)
echo "$SWAP_OUT" | grep -F '"code":"snapshot"'
req GET /admin/health | grep -F '"status":"degraded"' > /dev/null
# Only the publish degraded: the old generation answers byte-identically.
POST_SEG=$(req POST /v1/search "$DATA/sample-query.json")
[ "$PRE_SEG" = "$POST_SEG" ]
req GET /admin/stats | grep -F '"segments":{"count":1' > /dev/null
cp "$SCRATCH/delta.snap.orig" "$DELTA"
req POST /admin/swap | grep -F '"swapped":true' > /dev/null
req GET /admin/health | grep -F '"status":"ok"' > /dev/null
req GET /admin/stats | grep -F '"segments":{"count":2' > /dev/null
POST_PUB=$(req POST /v1/search "$DATA/sample-query.json")
[ "$PRE_SEG" = "$POST_PUB" ]

req POST /admin/shutdown | grep -F 'shutting down'
wait "$SERVE_PID"
grep -F 'shut down cleanly' "$SCRATCH/serve1.log"

# ---- Phase 4: crash recovery via MANIFEST.last-good ---------------
say "phase 4: torn MANIFEST + stale tmp, restart recovers"
echo "garbage, not a manifest" > "$DATA/MANIFEST"
echo "half-written" > "$DATA/MANIFEST.tmp.999"
# ---- Phase 4 rides along: two injected handler panics -------------
WEBTABLE_FAULT_PLAN='seed=5;handler=panic*2' \
  "$BIN" serve --data "$DATA" --addr "$ADDR" > "$SCRATCH/serve2.log" 2>&1 &
SERVE_PID=$!
say "phase 4: injected handler panics answer 500, pool survives"
for _ in 1 2; do
  OUT=$(req GET /health || true)
  echo "$OUT" | grep -F '"code":"internal"'
done
req GET /health | grep -F '"status":"ok"'
req GET /admin/health | grep -F '"status":"degraded"' > /dev/null # startup ran on last-good
req GET /admin/stats | grep -F '"panics":2' > /dev/null
req POST /v1/search "$DATA/sample-query.json" | grep -F '"answers":[' > /dev/null
grep -F '"event":"stale_tmp_removed"' "$SCRATCH/serve2.log" > /dev/null
grep -F '"event":"recovered_last_good"' "$SCRATCH/serve2.log" > /dev/null
req POST /admin/shutdown | grep -F 'shutting down'
wait "$SERVE_PID"
grep -F 'shut down cleanly' "$SCRATCH/serve2.log"

say "chaos soak passed"

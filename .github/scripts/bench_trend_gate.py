#!/usr/bin/env python3
"""Bench trend gate: the perf report must never silently lose coverage.

Compares the committed BENCH_candidates.json against a freshly generated
one and fails if any (group, bench) row present in the committed report is
missing from the fresh run — a renamed or dropped benchmark must show up
as an explicit diff in the PR, not as a quietly shrinking report. Numbers
are deliberately NOT gated: shared CI runners are far too noisy for that;
the JSON artifact exists for trend tracking.

Usage: bench_trend_gate.py COMMITTED.json FRESH.json
"""

import json
import sys


def rows(path: str) -> set[tuple[str, str]]:
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "webtable-perf-report/v1":
        sys.exit(f"{path}: unknown schema {report.get('schema')!r}")
    return {(r["group"], r["bench"]) for r in report["results"]}


def main() -> None:
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    committed, fresh = rows(sys.argv[1]), rows(sys.argv[2])
    missing = sorted(committed - fresh)
    added = sorted(fresh - committed)
    for group, bench in added:
        print(f"new bench row: {group}/{bench}")
    if missing:
        for group, bench in missing:
            print(f"MISSING bench row: {group}/{bench}", file=sys.stderr)
        sys.exit(
            f"{len(missing)} bench row(s) present in the committed "
            "BENCH_candidates.json are missing from the fresh perf report. "
            "If a benchmark was intentionally renamed or removed, update the "
            "committed BENCH_candidates.json in the same PR."
        )
    print(f"trend gate ok: {len(committed & fresh)} rows covered, {len(added)} new")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Bench trend gate: coverage must never shrink, and the load-bearing
groups must not regress.

Row coverage: fails if any (group, bench) row present in the committed
BENCH_candidates.json is missing from the fresh run — a renamed or
dropped benchmark must show up as an explicit diff in the PR, not as a
quietly shrinking report.

Numbers: most groups stay non-gating (shared CI runners are noisy), but
the zero-copy-loader and candidate-generation groups are this repo's
core perf claims, so rows in GATED_GROUP_PREFIXES fail when the fresh
mean exceeds committed * (1 + TOLERANCE) + SLACK_US. The 25% tolerance
plus a 1 µs absolute floor absorbs runner noise on both fast and slow
rows; a real quadratic or an accidental deep copy blows way past it.

More than one FRESH file may be given; each row gates on its minimum
across the runs. Scheduler noise only ever *adds* time, so the best
observation is the closest to the true cost — CI runs the quick report
twice and a spike must reproduce in both runs to fail the gate.

History: with --history PATH, appends one JSON line (label + every
fresh row, min across runs) so CI can accumulate a cross-commit trend
artifact.

Usage: bench_trend_gate.py COMMITTED.json FRESH.json [FRESH2.json ...]
           [--history PATH] [--label SHA]
"""

import json
import sys

GATED_GROUP_PREFIXES = ("index_build/snapshot_load", "candidates/")
TOLERANCE = 0.25
SLACK_US = 1.0


def load(path: str) -> dict[tuple[str, str], float]:
    with open(path, encoding="utf-8") as f:
        report = json.load(f)
    if report.get("schema") != "webtable-perf-report/v1":
        sys.exit(f"{path}: unknown schema {report.get('schema')!r}")
    return {(r["group"], r["bench"]): float(r["mean_us"]) for r in report["results"]}


def gated(group: str) -> bool:
    return any(group.startswith(p) for p in GATED_GROUP_PREFIXES)


def main() -> None:
    args = sys.argv[1:]
    history_path = label = None
    if "--history" in args:
        i = args.index("--history")
        history_path = args[i + 1]
        del args[i : i + 2]
    if "--label" in args:
        i = args.index("--label")
        label = args[i + 1]
        del args[i : i + 2]
    if len(args) < 2:
        sys.exit(__doc__)
    committed = load(args[0])
    fresh: dict[tuple[str, str], float] = {}
    for path in args[1:]:
        for key, mean_us in load(path).items():
            fresh[key] = min(mean_us, fresh.get(key, mean_us))

    missing = sorted(set(committed) - set(fresh))
    added = sorted(set(fresh) - set(committed))
    for group, bench in added:
        print(f"new bench row: {group}/{bench}")
    if missing:
        for group, bench in missing:
            print(f"MISSING bench row: {group}/{bench}", file=sys.stderr)
        sys.exit(
            f"{len(missing)} bench row(s) present in the committed "
            "BENCH_candidates.json are missing from the fresh perf report. "
            "If a benchmark was intentionally renamed or removed, update the "
            "committed BENCH_candidates.json in the same PR."
        )

    regressions = []
    for key in sorted(set(committed) & set(fresh)):
        group, bench = key
        if not gated(group):
            continue
        limit = committed[key] * (1.0 + TOLERANCE) + SLACK_US
        verdict = "REGRESSION" if fresh[key] > limit else "ok"
        print(
            f"{verdict}: {group}/{bench}: committed {committed[key]:.2f} µs, "
            f"fresh {fresh[key]:.2f} µs (limit {limit:.2f})"
        )
        if fresh[key] > limit:
            regressions.append(key)

    if history_path:
        entry = {
            "label": label or "unlabeled",
            "rows": [
                {"group": g, "bench": b, "mean_us": fresh[(g, b)]}
                for g, b in sorted(fresh)
            ],
        }
        with open(history_path, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"appended trend history to {history_path}")

    if regressions:
        for group, bench in regressions:
            print(f"PERF REGRESSION: {group}/{bench}", file=sys.stderr)
        sys.exit(
            f"{len(regressions)} gated bench row(s) regressed more than "
            f"{TOLERANCE:.0%} (+{SLACK_US} µs) vs the committed "
            "BENCH_candidates.json. If the slowdown is intended, refresh the "
            "committed report in the same PR and justify it there."
        )
    print(f"trend gate ok: {len(committed)} rows covered, {len(added)} new, 0 regressions")


if __name__ == "__main__":
    main()

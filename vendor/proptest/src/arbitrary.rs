//! `any::<T>()` strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * mag
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::arbitrary_printable_char(rng)
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`: `any::<u32>()`, `any::<bool>()`, ...
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, derives a second strategy from it,
    /// and generates the final value from that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `pred` (resamples, up to a cap).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, pred }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 consecutive samples", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `&str` regex-subset patterns are strategies yielding matching `String`s.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6, S7 / 7);

//! Offline stand-in for the [`proptest`](https://docs.rs/proptest/1) crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate re-implements the slice of the proptest 1.x API the workspace's
//! property tests use, keeping module paths and macro shapes identical:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, [`strategy::Just`],
//!   tuple strategies, integer/float range strategies;
//! * `&str` patterns as regex-subset string strategies (see [`string`]);
//! * [`arbitrary::any`] for primitives;
//! * [`collection::vec`] with fixed or ranged sizes.
//!
//! **Differences from real proptest:** values are generated from a
//! deterministic per-test RNG and failures are *not shrunk* — the failing
//! case index and seed are reported instead so a failure reproduces exactly.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                // Cases rejected by prop_assume! are resampled (like real
                // proptest), up to a cap of attempts per case.
                let mut satisfied = false;
                for attempt in 0..$crate::test_runner::MAX_REJECTS_PER_CASE {
                    let seed = $crate::test_runner::case_seed(stringify!($name), case)
                        .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut __rng = $crate::test_runner::rng_for(seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => {
                            satisfied = true;
                            break;
                        }
                        Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest '{}' failed at case {}/{} (seed {:#x}): {}",
                            stringify!($name), case, config.cases, seed, msg
                        ),
                    }
                }
                assert!(
                    satisfied,
                    "proptest '{}' case {}: prop_assume! rejected {} consecutive samples",
                    stringify!($name), case, $crate::test_runner::MAX_REJECTS_PER_CASE
                );
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with formatted context) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static ACCEPTED: AtomicU32 = AtomicU32::new(0);

    // No #[test] meta: the macro-generated fn is invoked by the real test
    // below so it can assert on the counter afterwards.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn assume_heavy(x in 0u32..100) {
            // ~90% of samples are rejected; each case must resample until
            // it finds a satisfying input rather than silently dropping.
            prop_assume!(x >= 90);
            ACCEPTED.fetch_add(1, Ordering::Relaxed);
            prop_assert!(x >= 90);
        }
    }

    #[test]
    fn prop_assume_resamples_rejected_cases() {
        assume_heavy();
        assert_eq!(
            ACCEPTED.load(Ordering::Relaxed),
            64,
            "every configured case must run on a satisfying input"
        );
    }
}

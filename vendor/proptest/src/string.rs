//! String generation from a regex subset.
//!
//! Supports the constructs the workspace's property tests use:
//! literals, escapes (`\t`, `\n`, `\r`, `\\` and escaped metacharacters),
//! `\PC` (any non-control char), character classes with ranges
//! (`[a-zA-Z0-9 |%\t]`, `[ -~]`), groups, top-level alternation, and the
//! quantifiers `{m}`, `{m,n}`, `{m,}`, `*`, `+`, `?`.
//!
//! Unsupported constructs (negated classes, anchors, backreferences, ...)
//! panic with a clear message rather than silently generating wrong data.

use crate::test_runner::TestRng;
use rand::Rng;

/// Open-ended quantifiers (`*`, `+`, `{m,}`) cap their repetition here.
const UNBOUNDED_CAP: u32 = 8;

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let ast = Parser::new(pattern).parse_alternation();
    let mut out = String::new();
    ast.generate(rng, &mut out);
    out
}

/// A printable (non-control) char: mostly ASCII, with a sprinkling of
/// non-ASCII letters, symbols and wide chars to exercise Unicode handling.
pub fn arbitrary_printable_char(rng: &mut TestRng) -> char {
    const EXOTIC: &[char] = &[
        'à', 'é', 'î', 'õ', 'ü', 'ß', 'ñ', 'Æ', 'ø', 'Å', 'π', 'Ω', 'λ', 'Σ', 'ж', 'Д', 'ل', 'ا',
        '中', '文', '表', 'テ', 'ス', 'ト', '한', '𝔻', '№', '€', '±', '≈', '†', '—', '…', '·', '¡',
        '¿', '“', '”',
    ];
    match rng.gen_range(0u32..10) {
        0..=7 => char::from_u32(rng.gen_range(0x20u32..=0x7E)).unwrap(),
        _ => EXOTIC[rng.gen_range(0..EXOTIC.len())],
    }
}

enum Node {
    /// A sequence of nodes.
    Seq(Vec<Node>),
    /// Top-level alternation `a|b|c`.
    Alt(Vec<Node>),
    /// A single literal char.
    Literal(char),
    /// A character class: inclusive ranges (single chars are `lo == hi`).
    Class(Vec<(char, char)>),
    /// `\PC` — any printable (non-control) character.
    AnyPrintable,
    /// `node{lo,hi}` with `hi` inclusive.
    Repeat(Box<Node>, u32, u32),
}

impl Node {
    fn generate(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Seq(nodes) => {
                for n in nodes {
                    n.generate(rng, out);
                }
            }
            Node::Alt(branches) => {
                branches[rng.gen_range(0..branches.len())].generate(rng, out);
            }
            Node::Literal(c) => out.push(*c),
            Node::Class(ranges) => {
                // Weight ranges by size for a roughly uniform char choice.
                let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
                let mut x = rng.gen_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if x < span {
                        // Skip the surrogate gap if a range straddles it.
                        let c = char::from_u32(lo as u32 + x).unwrap_or('\u{FFFD}');
                        out.push(c);
                        return;
                    }
                    x -= span;
                }
                unreachable!("class sampling out of bounds");
            }
            Node::AnyPrintable => out.push(arbitrary_printable_char(rng)),
            Node::Repeat(node, lo, hi) => {
                let n = rng.gen_range(*lo..=*hi);
                for _ in 0..n {
                    node.generate(rng, out);
                }
            }
        }
    }
}

struct Parser<'a> {
    pattern: &'a str,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Parser { pattern, chars: pattern.chars().peekable() }
    }

    fn unsupported(&self, what: &str) -> ! {
        panic!("proptest shim: unsupported regex construct {what:?} in pattern {:?}", self.pattern)
    }

    fn parse_alternation(&mut self) -> Node {
        let mut branches = vec![self.parse_sequence()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_sequence());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Node::Alt(branches)
        }
    }

    fn parse_sequence(&mut self) -> Node {
        let mut nodes = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            nodes.push(self.parse_quantifier(atom));
        }
        Node::Seq(nodes)
    }

    fn parse_atom(&mut self) -> Node {
        match self.chars.next().expect("atom") {
            '(' => {
                let inner = self.parse_alternation();
                match self.chars.next() {
                    Some(')') => inner,
                    _ => self.unsupported("unclosed group"),
                }
            }
            '[' => self.parse_class(),
            '\\' => self.parse_escape(),
            '.' => Node::AnyPrintable,
            c @ ('*' | '+' | '?' | '{' | '^' | '$') => {
                self.unsupported(&format!("dangling metacharacter '{c}'"))
            }
            c => Node::Literal(c),
        }
    }

    fn parse_escape(&mut self) -> Node {
        match self.chars.next() {
            Some('t') => Node::Literal('\t'),
            Some('n') => Node::Literal('\n'),
            Some('r') => Node::Literal('\r'),
            Some('P') => {
                // Only the negated-category form \PC ("not control") is
                // supported, matching its use in the workspace's tests.
                match self.chars.next() {
                    Some('C') => Node::AnyPrintable,
                    other => self.unsupported(&format!("\\P{other:?}")),
                }
            }
            Some(
                c @ ('\\' | '.' | '(' | ')' | '[' | ']' | '{' | '}' | '|' | '*' | '+' | '?' | '^'
                | '$' | '-' | ' '),
            ) => Node::Literal(c),
            other => self.unsupported(&format!("escape \\{other:?}")),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges: Vec<(char, char)> = Vec::new();
        if self.chars.peek() == Some(&'^') {
            self.unsupported("negated character class");
        }
        loop {
            let c = match self.chars.next() {
                None => self.unsupported("unclosed character class"),
                Some(']') => break,
                Some('\\') => match self.parse_escape() {
                    Node::Literal(c) => c,
                    _ => self.unsupported("class escape"),
                },
                Some(c) => c,
            };
            // Range `c-d` unless '-' is the closing literal.
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next(); // the '-'
                match ahead.peek() {
                    Some(&']') | None => ranges.push((c, c)),
                    Some(_) => {
                        self.chars.next();
                        let d = match self.chars.next() {
                            Some('\\') => match self.parse_escape() {
                                Node::Literal(d) => d,
                                _ => self.unsupported("class escape"),
                            },
                            Some(d) => d,
                            None => self.unsupported("unclosed character class"),
                        };
                        assert!(c <= d, "invalid class range {c}-{d}");
                        ranges.push((c, d));
                    }
                }
            } else {
                ranges.push((c, c));
            }
        }
        if ranges.is_empty() {
            self.unsupported("empty character class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, atom: Node) -> Node {
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
            }
            Some('+') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
            }
            Some('?') => {
                self.chars.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('{') => {
                self.chars.next();
                let mut spec = String::new();
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => self.unsupported("unclosed quantifier"),
                    }
                }
                let (lo, hi) = match spec.split_once(',') {
                    None => {
                        let n: u32 = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                    Some((lo, "")) => {
                        let lo: u32 = lo.trim().parse().expect("quantifier lower bound");
                        (lo, lo + UNBOUNDED_CAP)
                    }
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                };
                assert!(lo <= hi, "invalid quantifier {{{spec}}}");
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::generate_from_pattern;
    use crate::test_runner::rng_for;

    fn gen(pattern: &str, seed: u64) -> String {
        generate_from_pattern(pattern, &mut rng_for(seed))
    }

    #[test]
    fn class_with_quantifier() {
        for seed in 0..200 {
            let s = gen("[a-z]{0,12}", seed);
            assert!(s.chars().count() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_range_class() {
        for seed in 0..200 {
            let s = gen("[ -~]{0,30}", seed);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn class_with_escape_and_specials() {
        let mut seen_tab = false;
        for seed in 0..500 {
            let s = gen("[a-zA-Z0-9 |%\\t]{1,24}", seed);
            assert!(!s.is_empty());
            for c in s.chars() {
                assert!(
                    c.is_ascii_alphanumeric() || c == ' ' || c == '|' || c == '%' || c == '\t',
                    "unexpected {c:?}"
                );
                seen_tab |= c == '\t';
            }
        }
        assert!(seen_tab, "tab never generated from class containing \\t");
    }

    #[test]
    fn groups_and_repetition() {
        for seed in 0..200 {
            let s = gen("[a-z]{1,6}( [a-z]{1,6}){0,4}", seed);
            let toks: Vec<&str> = s.split(' ').collect();
            assert!((1..=5).contains(&toks.len()), "{s:?}");
            for t in toks {
                assert!((1..=6).contains(&t.len()), "{s:?}");
                assert!(t.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    #[test]
    fn capitalized_words_pattern() {
        for seed in 0..100 {
            let s = gen("[A-Z][a-z]{1,8}( [A-Z][a-z]{1,8}){1,3}", seed);
            for w in s.split(' ') {
                assert!(w.chars().next().unwrap().is_ascii_uppercase(), "{s:?}");
                assert!(w.chars().skip(1).all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn non_control_class() {
        for seed in 0..300 {
            let s = gen("\\PC{0,40}", seed);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn alternation_picks_each_branch() {
        let mut seen = [false; 2];
        for seed in 0..100 {
            match gen("ab|cd", seed).as_str() {
                "ab" => seen[0] = true,
                "cd" => seen[1] = true,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen, [true; 2]);
    }

    #[test]
    fn exact_count_and_open_quantifiers() {
        for seed in 0..50 {
            assert_eq!(gen("[0-9]{4}", seed).len(), 4);
            let plus = gen("x+", seed);
            assert!(!plus.is_empty() && plus.chars().all(|c| c == 'x'));
            let opt = gen("y?", seed);
            assert!(opt.len() <= 1);
        }
    }
}

//! Collection strategies: currently only [`vec`].

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for [`vec`]: an exact size or a half-open range,
/// mirroring proptest's `Into<SizeRange>` conversions.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

//! Test-runner configuration and the per-case error type.

/// Configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!` — not a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG driving value generation — a re-export of the workspace's
/// deterministic `StdRng` so every strategy draws from one stream.
pub type TestRng = rand::rngs::StdRng;

/// How many `prop_assume!` rejections one case tolerates before its
/// resampling loop gives up and the test errors out.
pub const MAX_REJECTS_PER_CASE: u32 = 100;

/// Seeds a [`TestRng`] — a free function so the `proptest!` expansion does
/// not require `rand` traits in the caller's scope.
pub fn rng_for(seed: u64) -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Derives the deterministic seed for one case of one named test: an FNV-1a
/// hash of the test name mixed with the case index, so each test gets an
/// independent stream and failures report a reproducible seed.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 1 | 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

//! Concrete generators. Only [`StdRng`] is provided.

use crate::{RngCore, SeedableRng};

/// A deterministic pseudo-random generator (xoshiro256++).
///
/// API-compatible with `rand::rngs::StdRng` for the operations this
/// workspace uses. The stream differs from the real `StdRng` (which is
/// ChaCha-based); all workspace code treats seeds as opaque, so only
/// per-seed determinism matters.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the seed with SplitMix64, as recommended by the xoshiro
        // authors, so that low-entropy seeds (0, 1, 2, ...) still produce
        // well-mixed initial states.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate.
//!
//! The build environment for this workspace has no registry access, so this
//! crate re-implements the small slice of the `rand` 0.8 API the workspace
//! actually uses, with the same module paths and trait shapes:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded via SplitMix64 — *not* the same stream as the
//!   real `StdRng`, but the workspace only relies on determinism per seed);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a float uniform in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from — implemented for `Range` and
/// `RangeInclusive` over the primitive integer and float types.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + u * (self.end - self.start);
                // `u` < 1.0 as f64, but rounding (the f32 cast, or the
                // multiply-add) can land exactly on `end`, which a
                // half-open range excludes; remap that point mass to
                // `start`.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty float range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_range_excludes_upper_bound_even_under_rounding() {
        // A source whose unit_f64 is the largest possible value,
        // (2^53 - 1) / 2^53: as f32 it rounds to exactly 1.0, so without
        // the exclusion guard `gen_range(0.0f32..1.0)` would return 1.0.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let mut rng = MaxRng;
        let v32 = rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&v32), "f32 upper bound leaked: {v32}");
        let v64 = rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&v64), "f64 upper bound leaked: {v64}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

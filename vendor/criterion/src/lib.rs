//! Offline stand-in for the [`criterion`](https://docs.rs/criterion/0.5)
//! benchmark harness.
//!
//! The build environment for this workspace has no registry access, so this
//! crate implements the criterion API surface the workspace's benches use,
//! backed by a simple calibrated wall-clock timer:
//!
//! * each benchmark is calibrated so one sample takes ≳2 ms, then
//!   `sample_size` samples are measured and min/median/mean reported;
//! * `--test` (passed by `cargo test` to `harness = false` benches) and
//!   `--quick` run exactly one iteration per benchmark — a smoke run;
//! * positional CLI arguments act as substring filters on benchmark ids
//!   (so `cargo bench -- bp/` works); other flags are accepted and ignored.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting a computation.
pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 100;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);
const MAX_CALIBRATION_ITERS: u64 = 1 << 24;

/// CLI-derived run options, parsed once in [`criterion_main!`].
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Run each benchmark exactly once (smoke mode).
    pub quick: bool,
    /// Substring filters: a benchmark runs if any filter matches its id.
    pub filters: Vec<String>,
}

impl RunOptions {
    /// Parses cargo bench / cargo test harness arguments.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = RunOptions::default();
        let mut skip_value = false;
        for arg in args {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--test" | "--quick" => opts.quick = true,
                // No-value flags criterion / libtest accept; ignored here.
                "--bench" | "--exact" | "--nocapture" | "--list" | "-q" | "--quiet"
                | "--verbose" => {}
                // `--flag=value` is self-contained; ignore it whole.
                s if s.starts_with('-') && s.contains('=') => {}
                // Any other flag is assumed to take a separate value (e.g.
                // `--save-baseline main`): swallow the value too, so it is
                // not misread as a benchmark-name filter that would
                // silently deselect everything.
                s if s.starts_with('-') => skip_value = true,
                s => opts.filters.push(s.to_string()),
            }
        }
        opts
    }

    fn matches(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f))
    }
}

/// The benchmark manager handed to each `criterion_group!` target.
pub struct Criterion {
    opts: RunOptions,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { opts: RunOptions::from_args() }
    }
}

impl Criterion {
    /// Creates a manager with explicit options (used by `criterion_main!`).
    pub fn with_options(opts: RunOptions) -> Self {
        Criterion { opts }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: DEFAULT_SAMPLE_SIZE }
    }

    /// Benchmarks a single function under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.opts, id, DEFAULT_SAMPLE_SIZE, |b| f(b));
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be >= 1");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.criterion.opts, &full, self.sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `<group>/<id>`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&self.criterion.opts, &full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. (No-op; provided for API parity.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form, for groups whose name carries the function.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Conversion of `BenchmarkId` or plain strings into a display id.
pub trait IntoBenchmarkId {
    /// The rendered id segment.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; its [`iter`](Bencher::iter) method
/// does the measuring.
pub struct Bencher {
    quick: bool,
    sample_size: usize,
    samples_ns: Vec<f64>, // per-iteration nanoseconds, one entry per sample
}

impl Bencher {
    /// Measures `f`, which is run repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            black_box(f());
            return;
        }
        // Calibrate: grow the iteration count until one sample is long
        // enough to time reliably.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= MAX_CALIBRATION_ITERS {
                break;
            }
            // Jump straight toward the target based on observed speed.
            let scale =
                (TARGET_SAMPLE_TIME.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).ceil() as u64;
            iters = (iters * scale.clamp(2, 1024)).min(MAX_CALIBRATION_ITERS);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(opts: &RunOptions, id: &str, sample_size: usize, mut f: F) {
    if !opts.matches(id) {
        return;
    }
    let mut b = Bencher { quick: opts.quick, sample_size, samples_ns: Vec::new() };
    f(&mut b);
    if opts.quick {
        println!("{id}: ok (smoke run)");
        return;
    }
    if b.samples_ns.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    b.samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let min = b.samples_ns[0];
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let mean = b.samples_ns.iter().sum::<f64>() / b.samples_ns.len() as f64;
    println!(
        "{id}: min {} / median {} / mean {}  ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        b.samples_ns.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(opts: &$crate::RunOptions) {
            let mut criterion = $crate::Criterion::with_options(opts.clone());
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let opts = $crate::RunOptions::from_args();
            $($group(&opts);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_bench_once() {
        let opts = RunOptions { quick: true, filters: vec![] };
        let mut c = Criterion::with_options(opts);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::from_parameter(7), &3u32, |b, &x| {
                b.iter(|| calls += x)
            });
            g.finish();
        }
        assert_eq!(calls, 1 + 3);
    }

    #[test]
    fn filters_select_by_substring() {
        let opts = RunOptions { quick: true, filters: vec!["match".into()] };
        let mut c = Criterion::with_options(opts);
        let mut ran = Vec::new();
        c.bench_function("will_match_this", |b| b.iter(|| ran.push("a")));
        c.bench_function("skipped", |b| b.iter(|| ran.push("b")));
        assert_eq!(ran, ["a"]);
    }

    #[test]
    fn unknown_value_flags_do_not_become_filters() {
        let args = ["--save-baseline", "main", "--color=never", "bp", "--quick"];
        let opts = RunOptions::parse(args.iter().map(|s| s.to_string()));
        assert_eq!(opts.filters, ["bp"], "'main' must be swallowed as --save-baseline's value");
        assert!(opts.quick);
    }

    #[test]
    fn measured_mode_collects_samples() {
        let opts = RunOptions::default();
        let mut c = Criterion::with_options(opts);
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("busy", |b| b.iter(|| black_box((0..100).sum::<u64>())));
        g.finish();
    }
}
